package monocle

// The monocled service layer: a long-running HTTP control surface over a
// Fleet of switch Backends, with the cross-epoch diff engine folding
// every sweep into alerts delivered through pluggable Sinks. The service
// owns the sweep loop (Run), judges every generated probe against the
// switch's data plane through its Backend driver (a simulated table for
// backend "sim", a live TCP OpenFlow 1.0 switch for backend "proxy"), and
// exposes the whole lifecycle over net/http: switches are added, rules
// installed/modified/deleted (driving the dynamic-update confirmation
// path), sweeps and alerts read back as JSON lines, and health/metrics
// polled (JSON or Prometheus text, content-negotiated). Rule operations
// can target the expected table, the data plane, or both — mutating only
// the data plane is exactly the "hardware diverged behind the
// controller's back" fault the paper's monitoring exists to catch.

import (
	"container/heap"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"context"

	"monocle/internal/header"
)

// Service is the long-running monocled fleet service. Build one with
// NewService, mount Handler on an HTTP server, and drive the sweep loop
// with Run; or call SweepRound directly for externally-paced sweeps.
// Close shuts the switch backends and alert sinks down.
type Service struct {
	set    settings
	fleet  *Fleet
	differ *Differ
	ring   *RingSink
	sinks  []Sink
	store  Store

	// sweepMu serializes sweep rounds (Run's loop and POST /sweep), so
	// concurrent rounds cannot interleave their diff-engine folds.
	sweepMu sync.Mutex

	// proxyGroup is the one event loop + probe-routing Multiplexer all
	// of this service's proxy backends share, so probes caught at any
	// member switch route back to their owner (created on first use).
	groupMu    sync.Mutex
	proxyGroup *ProxyGroup

	// recorders holds the per-switch session recorders WithRecordDir
	// created, for the session-layer annotations (rule ops, round marks).
	recMu     sync.Mutex
	recorders map[uint32]*RecordBackend

	// evq accumulates backend lifecycle events between sweep rounds; the
	// next round drains it into the diff engine before folding results,
	// so reconnect cycles land deterministically at round boundaries.
	evMu sync.Mutex
	evq  []BackendEvent

	// polMu guards the active monitoring policy, the per-switch tag
	// sets, and the plan version Run's scheduler watches so a policy
	// swap or switch registration rebuilds the per-group cadences.
	polMu   sync.Mutex
	pol     *Policy
	tags    map[uint32][]string
	planVer uint64

	mu        sync.Mutex
	lastSweep []ResultRecord
	// sweepBufs double-buffers the published result records: round N
	// fills the buffer round N-2 published, which round N-1 already
	// unpublished — so the fill (outside s.mu) never races a reader
	// copying s.lastSweep under s.mu, and steady-state rounds allocate
	// no record storage.
	sweepBufs   [2][]ResultRecord
	sweepBufIdx int
	// batchScratch holds SweepRound's per-run batch collation (probe
	// pointers, expectations); reused across rounds, guarded by sweepMu.
	batchProbes  []*Probe
	batchExpects []Expectation
	metrics      ServiceMetrics
	alertsByType map[string]uint64
	groupRounds  map[string]uint64
	groupStats   map[string]*GroupMetrics
	draining     bool
	// resuming is true while Resume replays the WAL: the service is alive
	// but must not be routed to (GET /readyz stays 503).
	resuming bool
	// liveRounds counts sweep rounds completed in THIS process life
	// (Resume restores metrics.Rounds but not liveRounds): readiness
	// requires at least one, so a replica still warming up after a
	// restart is never routed to before its first post-resume round.
	liveRounds uint64

	// closeOnce makes Close idempotent and safe to race from several
	// goroutines (a cluster coordinator tearing down replicas easily
	// double-Closes); the first call's error is returned to all callers.
	closeOnce sync.Once
	closeErr  error
}

// ServiceMetrics is the GET /metrics payload.
type ServiceMetrics struct {
	// Rounds counts completed sweep rounds.
	Rounds uint64 `json:"rounds"`
	// RulesSwept counts per-rule results across all rounds.
	RulesSwept uint64 `json:"rules_swept"`
	// AlertsTotal counts alerts raised across all rounds.
	AlertsTotal uint64 `json:"alerts_total"`
	// LastRoundRules is the result count of the most recent round.
	LastRoundRules int `json:"last_round_rules"`
	// LastRoundMicros is the most recent round's wall time in µs.
	LastRoundMicros int64 `json:"last_round_micros"`
	// LastRoundMicrosPerRule is the most recent round's per-rule cost.
	LastRoundMicrosPerRule float64 `json:"last_round_us_per_rule"`
	// AlertsByType breaks AlertsTotal down by alert type name.
	AlertsByType map[string]uint64 `json:"alerts_by_type,omitempty"`
	// SinkErrors counts failed alert-sink deliveries.
	SinkErrors uint64 `json:"sink_errors,omitempty"`
	// StoreErrors counts failed persistence-store writes (the service
	// keeps monitoring through them; a bad disk must not stop sweeps).
	StoreErrors uint64 `json:"store_errors,omitempty"`
	// PolicyErrors counts rejected policy loads: a WithPolicyFile that
	// did not read or parse, or a persisted policy that no longer parses
	// on Resume (the service keeps monitoring without the policy).
	PolicyErrors uint64 `json:"policy_errors,omitempty"`
	// Switches carries the per-switch epoch and cache snapshots.
	Switches []SwitchMetrics `json:"switches,omitempty"`
	// Groups carries the per-policy-group sweep counters, sorted by
	// group name (empty without an active policy).
	Groups []GroupMetrics `json:"groups,omitempty"`
}

// SwitchMetrics is one switch's slice of GET /metrics.
type SwitchMetrics struct {
	Switch uint32     `json:"switch"`
	Epoch  uint64     `json:"epoch"`
	Rules  int        `json:"rules"`
	Cache  CacheStats `json:"cache"`
	// EventsDropped counts driver lifecycle events dropped from the
	// switch's backend event stream (buffer overflow with no consumer
	// keeping up) — a non-zero value means disconnect/reconnect evidence
	// may be missing.
	EventsDropped uint64 `json:"events_dropped,omitempty"`
}

// GroupMetrics is one policy group's slice of GET /metrics.
type GroupMetrics struct {
	// Group is the policy group name ("default" for the implicit
	// catch-all group).
	Group string `json:"group"`
	// Switches counts fleet members currently resolving to the group.
	Switches int `json:"switches"`
	// Rounds counts completed sweep rounds that included the group.
	Rounds uint64 `json:"rounds"`
	// RulesCovered counts per-rule results the group's switches
	// contributed across all rounds.
	RulesCovered uint64 `json:"rules_covered"`
	// LastRoundRules is the group's result count in its most recent
	// round.
	LastRoundRules int `json:"last_round_rules"`
	// LastRoundMicros is the wall time of the group's most recent round
	// in µs (a round sweeping several groups shares its wall time).
	LastRoundMicros int64 `json:"last_round_micros"`
	// LastRoundMicrosPerRule is the group's most recent per-rule cost.
	LastRoundMicrosPerRule float64 `json:"last_round_us_per_rule"`
}

// SwitchSpec is the POST /switches request body.
type SwitchSpec struct {
	// ID is the switch id (required, non-zero).
	ID uint32 `json:"id"`
	// Tags are free-form labels monitoring-policy selectors match
	// ("select tag ..."); they have no effect without a policy.
	Tags []string `json:"tags,omitempty"`
	// Tag pins the probe tag (default: the switch id).
	Tag uint64 `json:"tag,omitempty"`
	// Ports restricts probe in_port values to the switch's real ports.
	Ports []uint16 `json:"ports,omitempty"`
	// Miss is the table-miss behaviour: "drop" (default) or "controller".
	Miss string `json:"miss,omitempty"`
	// Backend selects the switch driver: "sim" (default — a simulated
	// in-memory data plane), "proxy" (a live TCP OpenFlow 1.0 switch
	// fronted by the library's proxy driver), or "replay" (a recorded
	// session trace re-served deterministically with zero network access).
	Backend string `json:"backend,omitempty"`
	// Address is the switch's TCP address (backend "proxy").
	Address string `json:"address,omitempty"`
	// Trace is the path of the recorded session trace to re-serve
	// (backend "replay"; see WithRecordDir and cmd/monotrace).
	Trace string `json:"trace,omitempty"`
	// Listen is the controller-side proxy listen address (backend
	// "proxy", optional: empty means the service is the only controller).
	Listen string `json:"listen,omitempty"`
	// Peers maps switch ports to the neighbour switch id reachable over
	// them — the downstream probe catchers (backend "proxy").
	Peers map[uint16]uint32 `json:"peers,omitempty"`
}

// RuleSpec is the JSON form of one rule in rule operations.
type RuleSpec struct {
	ID       uint64 `json:"id"`
	Priority int    `json:"priority"`
	// Match maps OpenFlow 1.0 field names (dl_type, nw_src, ...) to
	// values: decimal or 0x-hex integers, dotted quads, and
	// value/prefixlen prefixes (nw_src/nw_dst style).
	Match   map[string]string `json:"match,omitempty"`
	Actions []ActionSpec      `json:"actions,omitempty"`
}

// ActionSpec is the JSON form of one rule action: exactly one of Output,
// ECMP, or Set is used. An empty Actions list on a RuleSpec drops.
type ActionSpec struct {
	Output uint16        `json:"output,omitempty"`
	ECMP   []uint16      `json:"ecmp,omitempty"`
	Set    *SetFieldSpec `json:"set,omitempty"`
}

// SetFieldSpec is the JSON form of a set-field rewrite action.
type SetFieldSpec struct {
	Field string `json:"field"`
	Value uint64 `json:"value"`
}

// RuleOp is the POST /switches/{id}/rules request body.
type RuleOp struct {
	// Op is "add", "modify", or "delete".
	Op string `json:"op"`
	// Rule is the rule to add (op=add).
	Rule *RuleSpec `json:"rule,omitempty"`
	// ID selects the rule to modify/delete.
	ID uint64 `json:"id,omitempty"`
	// Actions is the replacement action list (op=modify).
	Actions []ActionSpec `json:"actions,omitempty"`
	// Dataplane targets the operation: "both" (default — the normal
	// controller path: expected table and data plane move together),
	// "expected" (the controller believes the change happened but the
	// hardware never applied it), or "actual" (the hardware changed
	// behind the verifier's back). The last two are the fault-injection
	// hooks continuous monitoring exists to catch.
	Dataplane string `json:"dataplane,omitempty"`
}

// UpdateReply is the POST /switches/{id}/rules response body.
type UpdateReply struct {
	Switch uint32 `json:"switch"`
	Rule   uint64 `json:"rule"`
	Op     string `json:"op"`
	// Verdict is the dynamic-update confirmation probe's judgement
	// against the data plane ("confirmed"/"absent"/"unexpected"), or
	// "unmonitorable"/"none" when no probe exists, or "unobserved" when
	// the mutation committed but the confirmation probe could not be
	// observed (backend closed or disconnected mid-window). For
	// deletions, "absent" is the success verdict — the probe fell
	// through.
	Verdict string `json:"verdict,omitempty"`
	// Record is the confirmation probe's result record, when one exists.
	Record *ResultRecord `json:"record,omitempty"`
}

// NewService returns an empty fleet service. The options parameterize the
// embedded Fleet (WithWorkers, WithSteadyInterval, per-switch defaults),
// the diff engine (WithDebounce, WithStallThreshold, WithFlapWindow), and
// alert delivery (WithAlertSink). Without an explicit *RingSink, a
// default in-memory ring of 4096 alerts backs GET /alerts.
func NewService(opts ...Option) *Service {
	set := defaultSettings()
	set.apply(opts)
	s := &Service{
		set:          set,
		fleet:        NewFleet(opts...),
		differ:       NewDiffer(opts...),
		recorders:    make(map[uint32]*RecordBackend),
		alertsByType: make(map[string]uint64),
		tags:         make(map[uint32][]string),
		groupRounds:  make(map[string]uint64),
		groupStats:   make(map[string]*GroupMetrics),
	}
	for _, sink := range set.sinks {
		if ring, ok := sink.(*RingSink); ok {
			s.ring = ring
		}
	}
	if s.ring == nil {
		s.ring = NewRingSink(0)
		s.sinks = append(s.sinks, s.ring)
	}
	s.sinks = append(s.sinks, set.sinks...)
	switch {
	case set.store != nil:
		s.store = set.store
	case set.stateDir != "":
		if st, err := OpenFileStore(set.stateDir); err == nil {
			s.store = st
		} else {
			s.metrics.StoreErrors++
		}
	}
	switch {
	case set.policy != nil:
		s.pol = set.policy
	case set.policyFile != "":
		if p, err := ParsePolicyFile(set.policyFile); err == nil {
			s.pol = p
		} else {
			// A bad policy file must not keep the monitor from running:
			// the service comes up without a policy, loudly countable.
			s.metrics.PolicyErrors++
		}
	}
	if s.pol != nil && s.store != nil {
		if err := s.store.SavePolicy(s.pol.Source()); err != nil {
			s.metrics.StoreErrors++
		}
	}
	return s
}

// Store returns the service's persistence store (nil without WithStore /
// WithStateDir).
func (s *Service) Store() Store { return s.store }

// noteStoreErr counts one failed store write.
func (s *Service) noteStoreErr() {
	s.mu.Lock()
	s.metrics.StoreErrors++
	s.mu.Unlock()
}

// persistRules snapshots switch id's expected table to the store.
func (s *Service) persistRules(id uint32, v *Verifier) {
	if s.store == nil {
		return
	}
	if err := s.store.SaveRules(id, v.Epoch(), ruleSpecs(v.Rules())); err != nil {
		s.noteStoreErr()
	}
}

// Fleet returns the service's underlying fleet (programmatic access from
// the same process; the HTTP surface is a thin layer over it).
func (s *Service) Fleet() *Fleet { return s.fleet }

// Differ returns the service's diff engine.
func (s *Service) Differ() *Differ { return s.differ }

// Policy returns the active monitoring policy (nil when none).
func (s *Service) Policy() *Policy {
	s.polMu.Lock()
	defer s.polMu.Unlock()
	return s.pol
}

// planVersion returns the counter Run's scheduler watches: it bumps
// whenever the group layout may have changed (policy swap, new switch).
func (s *Service) planVersion() uint64 {
	s.polMu.Lock()
	defer s.polMu.Unlock()
	return s.planVer
}

// tagsOf returns switch id's registration tags.
func (s *Service) tagsOf(id uint32) []string {
	s.polMu.Lock()
	defer s.polMu.Unlock()
	return s.tags[id]
}

// SetPolicy atomically replaces the active monitoring policy (nil clears
// it): every switch re-resolves to its group, the diff engine's
// threshold and alert-filter overrides and the proxy drivers'
// confirmation deadlines are re-applied, Run's scheduler rebuilds its
// per-group cadences before the next round, and the policy text is
// persisted so Resume restores it after a restart. A sweep round already
// in flight finishes under the plan it was compiled with.
func (s *Service) SetPolicy(p *Policy) {
	s.polMu.Lock()
	s.pol = p
	s.planVer++
	tags := make(map[uint32][]string, len(s.tags))
	for id, t := range s.tags {
		tags[id] = t
	}
	s.polMu.Unlock()

	for _, id := range s.fleet.Switches() {
		var ov *DiffOverrides
		confirm := s.set.detectionTimeout
		if p != nil {
			ov = p.overridesFor(id, tags[id])
			if c := p.confirmOf(id, tags[id]); c > 0 {
				confirm = c
			}
		}
		s.differ.SetOverrides(id, ov)
		if be, ok := s.fleet.Backend(id); ok {
			if ts, ok := UnwrapBackend(be).(interface{ SetObserveTimeout(time.Duration) }); ok {
				if confirm <= 0 {
					confirm = 2 * time.Second // NewProxyBackend's own default
				}
				ts.SetObserveTimeout(confirm)
			}
		}
	}
	if s.store != nil {
		src := ""
		if p != nil {
			src = p.Source()
		}
		if err := s.store.SavePolicy(src); err != nil {
			s.noteStoreErr()
		}
	}
}

// AddSwitch registers a switch with the service: a fleet Verifier for the
// expected table plus the Backend driver sweeps are judged against — a
// simulated data-plane table (backend "sim", the default) or the live TCP
// proxy driver dialing spec.Address (backend "proxy"). The HTTP
// POST /switches endpoint calls this.
func (s *Service) AddSwitch(spec SwitchSpec) (*Verifier, error) {
	if spec.ID == 0 {
		return nil, fmt.Errorf("monocle: switch id must be non-zero")
	}
	// Catch duplicates before any trace file is created: re-registering a
	// switch must not truncate the trace its live session is writing.
	if _, dup := s.fleet.Verifier(spec.ID); dup {
		return nil, fmt.Errorf("%w: %d", ErrDuplicateSwitch, spec.ID)
	}
	pol := s.Policy()
	// Default to the service-level option (WithTableMiss), not MissDrop.
	miss := s.set.miss
	switch spec.Miss {
	case "":
	case "drop":
		miss = MissDrop
	case "controller":
		miss = MissController
	default:
		return nil, fmt.Errorf("monocle: unknown miss behaviour %q", spec.Miss)
	}
	var opts []Option
	opts = append(opts, WithTableMiss(miss))
	if spec.Tag != 0 {
		opts = append(opts, WithProbeTag(spec.Tag))
	}
	if len(spec.Ports) > 0 {
		ports := make([]PortID, len(spec.Ports))
		for i, p := range spec.Ports {
			ports[i] = PortID(p)
		}
		opts = append(opts, WithPorts(ports...))
	}
	if len(spec.Peers) > 0 {
		peers := make(map[PortID]uint32, len(spec.Peers))
		for p, id := range spec.Peers {
			peers[PortID(p)] = id
		}
		opts = append(opts, WithPeers(peers))
	}

	var be Backend
	switch spec.Backend {
	case "", "sim":
		be = NewSimBackend(spec.ID, WithTableMiss(miss))
	case "proxy":
		if spec.Address == "" {
			return nil, fmt.Errorf("monocle: backend \"proxy\" needs an address")
		}
		s.groupMu.Lock()
		if s.proxyGroup == nil {
			s.proxyGroup = NewProxyGroup()
		}
		group := s.proxyGroup
		s.groupMu.Unlock()
		// A policy "confirm within" deadline for this switch bounds the
		// proxy's Observe round trips from the first observation on.
		confirm := s.set.detectionTimeout
		if pol != nil {
			if c := pol.confirmOf(spec.ID, spec.Tags); c > 0 {
				confirm = c
			}
		}
		be = NewProxyBackend(ProxyConfig{
			SwitchID:       spec.ID,
			SwitchAddr:     spec.Address,
			Listen:         spec.Listen,
			ObserveTimeout: confirm,
			Group:          group,
			ReconnectMin:   s.set.reconnectMin,
			ReconnectMax:   s.set.reconnectMax,
		}, opts...)
	case "replay":
		if spec.Trace == "" {
			return nil, fmt.Errorf("monocle: backend \"replay\" needs a trace path")
		}
		rb, err := OpenReplayBackend(spec.Trace)
		if err != nil {
			return nil, err
		}
		if rb.SwitchID() != spec.ID {
			return nil, fmt.Errorf("monocle: trace %s records switch %d, not %d", spec.Trace, rb.SwitchID(), spec.ID)
		}
		be = rb
	default:
		return nil, fmt.Errorf("monocle: unknown backend %q", spec.Backend)
	}
	// Wrap the driver before Connect so the whole session lands on the
	// trace, then tap it so lifecycle events feed the diff engine. A replay
	// driver is never re-recorded: pointing -record-dir at the directory a
	// trace replays from must not overwrite the evidence.
	if s.set.recordDir != "" && spec.Backend != "replay" {
		if rb, err := s.recordSwitch(be); err == nil {
			rb.RecordSpec(spec)
			be = rb
		} else {
			be.Close()
			return nil, fmt.Errorf("monocle: record dir: %w", err)
		}
	}
	be = s.tapBackend(be)
	if err := be.Connect(context.Background()); err != nil {
		be.Close()
		return nil, err
	}
	v, err := s.fleet.AddBackend(be, opts...)
	if err != nil {
		be.Close()
		s.dropRecorder(spec.ID)
		return nil, err
	}
	s.polMu.Lock()
	s.tags[spec.ID] = append([]string(nil), spec.Tags...)
	s.planVer++
	s.polMu.Unlock()
	if pol != nil {
		s.differ.SetOverrides(spec.ID, pol.overridesFor(spec.ID, spec.Tags))
	}
	if s.store != nil {
		if err := s.store.SaveSwitch(spec); err != nil {
			s.noteStoreErr()
		}
	}
	return v, nil
}

// recordSwitch wraps be in a RecordBackend writing to the service's
// record directory (WithRecordDir), registering the recorder for the
// session-layer annotations (rule ops, round marks).
func (s *Service) recordSwitch(be Backend) (*RecordBackend, error) {
	id := be.SwitchID()
	if err := os.MkdirAll(s.set.recordDir, 0o755); err != nil {
		return nil, err
	}
	tw, err := CreateTrace(filepath.Join(s.set.recordDir, fmt.Sprintf("switch-%d.trace", id)), TraceHeader{Switch: id})
	if err != nil {
		return nil, err
	}
	rb := NewRecordBackend(be, tw)
	s.recMu.Lock()
	s.recorders[id] = rb
	s.recMu.Unlock()
	return rb, nil
}

// recorder returns switch id's session recorder, nil when not recording.
func (s *Service) recorder(id uint32) *RecordBackend {
	s.recMu.Lock()
	defer s.recMu.Unlock()
	return s.recorders[id]
}

// dropRecorder forgets a recorder after a failed registration.
func (s *Service) dropRecorder(id uint32) {
	s.recMu.Lock()
	delete(s.recorders, id)
	s.recMu.Unlock()
}

// backendTap is the Service's outermost backend wrapper: it consumes the
// driver's lifecycle event stream, queues every event for the diff
// engine (drained at the next sweep round, so reconnect cycles fold at
// round boundaries), and re-emits it on its own ring for external
// consumers. The queue is appended before the re-emit: a consumer that
// saw an event on Events() knows the diff engine will see it no later
// than the next round — the ordering scenario tests lean on.
type backendTap struct {
	Backend
	svc    *Service
	events *eventRing
	done   chan struct{}
}

// tapBackend wraps be in the service's event tap.
func (s *Service) tapBackend(be Backend) *backendTap {
	t := &backendTap{Backend: be, svc: s, events: newEventRing(), done: make(chan struct{})}
	go t.pump()
	return t
}

func (t *backendTap) pump() {
	defer close(t.done)
	for ev := range t.Backend.Events() {
		t.svc.queueBackendEvent(ev)
		t.events.emit(ev)
	}
	t.events.close()
}

// Unwrap returns the wrapped driver (see UnwrapBackend).
func (t *backendTap) Unwrap() Backend { return t.Backend }

// ObserveBatch implements BatchObserver by forwarding through the
// package seam: the embedded interface would hide the wrapped driver's
// batch fast path from type assertions on the tap, so the tap forwards
// explicitly (falling back to sequential Observe for plain drivers).
func (t *backendTap) ObserveBatch(ctx context.Context, probes []*Probe, expects []Expectation) ([]Verdict, []error) {
	return ObserveBatch(ctx, t.Backend, probes, expects)
}

// Events implements Backend with the tap's re-emitted stream.
func (t *backendTap) Events() <-chan BackendEvent { return t.events.ch }

// EventDrops implements EventDropCounter: the tap's own drops plus the
// wrapped driver's.
func (t *backendTap) EventDrops() uint64 {
	d := t.events.drops()
	if c, ok := t.Backend.(EventDropCounter); ok {
		d += c.EventDrops()
	}
	return d
}

// Close implements Backend, waiting for the pump to drain so every event
// the driver emitted reaches the diff-engine queue before Close returns.
func (t *backendTap) Close() error {
	err := t.Backend.Close()
	<-t.done
	return err
}

// queueBackendEvent queues one driver lifecycle event for the diff
// engine; SweepRound drains the queue before folding results.
func (s *Service) queueBackendEvent(ev BackendEvent) {
	s.evMu.Lock()
	s.evq = append(s.evq, ev)
	s.evMu.Unlock()
}

// drainBackendEvents feeds queued driver events to the diff engine.
func (s *Service) drainBackendEvents() {
	s.evMu.Lock()
	q := s.evq
	s.evq = nil
	s.evMu.Unlock()
	for _, ev := range q {
		s.differ.ObserveBackendEvent(ev)
	}
}

// InstallRules loads pre-existing rules into switch id: the expected
// table and the backend data plane move together, without confirmation
// probes (bulk loads, catching rules, state already on the switch).
func (s *Service) InstallRules(id uint32, rules ...*Rule) error {
	v, ok := s.fleet.Verifier(id)
	if !ok {
		return ErrNotFound
	}
	be, hasBE := s.fleet.Backend(id)
	for _, r := range rules {
		if hasBE {
			if err := be.Apply(BackendOp{Op: "add", Rule: r}); err != nil {
				return err
			}
		}
	}
	err := v.Install(rules...)
	s.persistRules(id, v)
	if err == nil {
		if rec := s.recorder(id); rec != nil {
			for _, r := range rules {
				rs := ruleSpec(r)
				rec.RecordRuleOp(RuleOp{Op: "install", Rule: &rs})
			}
		}
	}
	return err
}

// InstallRuleSpecs is InstallRules for JSON-form rules — the form trace
// annotations and HTTP clients carry. cmd/monotrace re-drives recorded
// "install" annotations through it.
func (s *Service) InstallRuleSpecs(id uint32, specs ...RuleSpec) error {
	rules := make([]*Rule, len(specs))
	for i := range specs {
		r, err := specs[i].rule()
		if err != nil {
			return err
		}
		rules[i] = r
	}
	return s.InstallRules(id, rules...)
}

// ApplyRule executes one rule operation against switch id, updating the
// expected table and/or the data plane (through the switch's Backend
// driver) per op.Dataplane, and judges the dynamic-update confirmation
// probe against the data plane.
func (s *Service) ApplyRule(id uint32, op RuleOp) (UpdateReply, error) {
	v, ok := s.fleet.Verifier(id)
	if !ok {
		return UpdateReply{}, ErrNotFound
	}
	expected := op.Dataplane == "" || op.Dataplane == "both" || op.Dataplane == "expected"
	dataplane := op.Dataplane == "" || op.Dataplane == "both" || op.Dataplane == "actual"
	if !expected && !dataplane {
		return UpdateReply{}, fmt.Errorf("monocle: unknown dataplane target %q", op.Dataplane)
	}
	be, hasBE := s.fleet.Backend(id)
	// Switches registered directly on the underlying Fleet have no
	// data-plane driver; a mutation targeting it cannot be applied.
	if dataplane && !hasBE {
		return UpdateReply{}, fmt.Errorf("monocle: switch %d has no data-plane backend (registered outside the service); use dataplane:\"expected\"", id)
	}

	// preImage resolves the rule an op with a bare id refers to, so the
	// driver sees its match and priority (wire operations need them).
	// Nil when the id is unknown to the expected table: id-addressed
	// drivers proceed, wire drivers refuse (see BackendOp.Rule).
	preImage := func(ruleID uint64) *Rule {
		if r, ok := v.Rule(ruleID); ok {
			return r
		}
		return nil
	}

	// unprobeable reports genErr is a structural no-probe-exists sentinel:
	// the table mutation itself succeeded, so the operation must not turn
	// into an HTTP error (the state did change) — it surfaces as an
	// "unmonitorable" verdict instead.
	unprobeable := func(err error) bool {
		return errors.Is(err, ErrUnmonitorable) || errors.Is(err, ErrRewritesProbeField)
	}
	var (
		p      *Probe
		genErr error
		ruleID uint64
		expect Expectation
	)
	switch op.Op {
	case "add":
		if op.Rule == nil {
			return UpdateReply{}, fmt.Errorf("monocle: add needs a rule")
		}
		r, err := op.Rule.rule()
		if err != nil {
			return UpdateReply{}, err
		}
		ruleID = r.ID
		expect = ExpectPresent
		// Update the data plane first so the confirmation probe is
		// judged against post-update hardware state (the normal path).
		if dataplane {
			if err := be.Apply(BackendOp{Op: "add", Rule: r}); err != nil {
				return UpdateReply{}, err
			}
		}
		if expected {
			p, genErr = v.Add(r)
			if genErr != nil && !unprobeable(genErr) {
				return UpdateReply{}, genErr
			}
		}
	case "modify":
		actions, err := actionList(op.Actions)
		if err != nil {
			return UpdateReply{}, err
		}
		ruleID = op.ID
		expect = ExpectModified
		if dataplane {
			if err := be.Apply(BackendOp{Op: "modify", ID: op.ID, Rule: preImage(op.ID), Actions: actions}); err != nil {
				return UpdateReply{}, err
			}
		}
		if expected {
			p, genErr = v.Modify(op.ID, actions)
			if genErr != nil && !unprobeable(genErr) {
				return UpdateReply{}, genErr
			}
		}
	case "delete":
		ruleID = op.ID
		expect = ExpectAbsent
		pre := preImage(op.ID)
		if expected {
			p, genErr = v.Delete(op.ID)
			if genErr != nil && !unprobeable(genErr) {
				return UpdateReply{}, genErr
			}
		}
		if dataplane {
			if err := be.Apply(BackendOp{Op: "delete", ID: op.ID, Rule: pre}); err != nil {
				return UpdateReply{}, err
			}
		}
	default:
		return UpdateReply{}, fmt.Errorf("monocle: unknown op %q", op.Op)
	}
	if expected {
		// The expected-table mutation committed: snapshot it before the
		// confirmation probe round trip, so a crash during observation
		// still restarts with the post-mutation table.
		s.persistRules(id, v)
	}

	reply := UpdateReply{Switch: id, Rule: ruleID, Op: op.Op, Verdict: "none"}
	switch {
	case unprobeable(genErr):
		reply.Verdict = "unmonitorable"
	case p != nil && hasBE:
		rec := NewResultRecord(id, v.Epoch(), ProbeResult{Rule: &Rule{ID: ruleID}, Probe: p})
		reply.Record = &rec
		verdict, err := be.Observe(context.Background(), p, expect)
		if err != nil {
			// The table mutation already committed on both sides; only
			// the confirmation observation failed (backend closed or
			// disconnected mid-window). The operation must not turn into
			// an HTTP error — a retry would re-apply a committed change.
			reply.Verdict = "unobserved"
			break
		}
		reply.Verdict = verdict.String()
	}
	// Annotate the trace with the session-level operation so cmd/monotrace
	// can re-drive the same RuleOp against a replayed backend. Written
	// after the backend calls it produced, and only for ops that
	// committed: a rejected op left nothing on the trace to replay.
	if rec := s.recorder(id); rec != nil {
		rec.RecordRuleOp(op)
	}
	return reply, nil
}

// roundPlan pairs one switch's compiled ProbePlan with the table epoch
// it was compiled against (the frozen-entry folds of unsampled rules
// need an epoch even when the switch contributed no sweep events).
type roundPlan struct {
	plan  ProbePlan
	epoch uint64
}

// compilePlans compiles the active policy against the live fleet: one
// plan per switch whose group is named in groups (empty = every group),
// at each group's current round counter. Plans are deterministic — a
// pure function of (policy, switch, installed rules, group round).
func (s *Service) compilePlans(pol *Policy, groups []string) []roundPlan {
	var filter map[string]bool
	if len(groups) > 0 {
		filter = make(map[string]bool, len(groups))
		for _, g := range groups {
			filter[g] = true
		}
	}
	s.mu.Lock()
	rounds := make(map[string]uint64, len(s.groupRounds))
	for g, n := range s.groupRounds {
		rounds[g] = n
	}
	s.mu.Unlock()
	var out []roundPlan
	for _, id := range s.fleet.Switches() {
		v, ok := s.fleet.Verifier(id)
		if !ok {
			continue
		}
		tags := s.tagsOf(id)
		group := pol.groupOf(id, tags)
		if filter != nil && !filter[group] {
			continue
		}
		out = append(out, roundPlan{
			plan:  pol.Plan(id, tags, v.Rules(), rounds[group]),
			epoch: v.Epoch(),
		})
	}
	return out
}

// ProbePlans compiles the active policy against the live fleet at each
// group's next round counter and returns the per-switch plans — exactly
// what the next SweepRound will probe. Nil without a policy.
func (s *Service) ProbePlans() []ProbePlan {
	pol := s.Policy()
	if pol == nil {
		return nil
	}
	rps := s.compilePlans(pol, nil)
	out := make([]ProbePlan, len(rps))
	for i, rp := range rps {
		out[i] = rp.plan
	}
	return out
}

// SweepRound runs one sweep round, judges every generated probe against
// its switch's data plane through the Backend seam, feeds the diff
// engine, finalizes the round, delivers the round's alerts to the
// attached sinks, and returns them. Run calls this on the per-group
// cadences; tests and externally-paced deployments call it directly (or
// through POST /sweep).
//
// With an active policy the round first compiles each switch's probe
// plan and sweeps only the planned rules; groups names the policy groups
// to include (none = every group, which is also the no-policy
// behaviour). Cancelling ctx aborts the round: the partial fold is
// discarded (no false failing-rule streaks from unprocessed rules), the
// round is not counted, and nil is returned.
func (s *Service) SweepRound(ctx context.Context, groups ...string) []Alert {
	s.sweepMu.Lock()
	defer s.sweepMu.Unlock()
	start := time.Now()
	// Driver lifecycle events queued since the last round fold first, so a
	// reconnect cycle lands in the same round as the sweep that follows it.
	s.drainBackendEvents()

	pol := s.Policy()
	var (
		evs   []SweepEvent
		plans []roundPlan
	)
	if pol == nil {
		evs = s.fleet.Sweep(ctx)
	} else {
		plans = s.compilePlans(pol, groups)
		sel := make(map[uint32][]uint64, len(plans))
		for _, rp := range plans {
			sel[rp.plan.Switch] = rp.plan.Rules
		}
		evs = s.fleet.SweepPlan(ctx, sel)
	}

	// abort discards a cancelled round: folding its partial results would
	// turn every unprocessed rule into a false failing streak, so the
	// diff engine drops the partial fold and the round is not counted.
	abort := func() []Alert {
		s.differ.AbortSweep()
		return nil
	}
	if ctx.Err() != nil {
		return abort()
	}

	// The fold routes observation through the batch seam: sweep events
	// arrive contiguous per switch (Fleet concatenates per-member
	// slices), so each run becomes one ObserveBatch call — one event-loop
	// post and a pipelined in-flight window on a ProxyBackend instead of
	// len(run) serialized round trips. Verdicts fold in the original
	// event order through exactly the branches of the one-shot path, so
	// the alert stream is bit-identical. The record slice and batch
	// collation scratch are pooled (see sweepBufs).
	recs := s.sweepBufs[s.sweepBufIdx][:0]
	if cap(recs) < len(evs) {
		recs = make([]ResultRecord, 0, len(evs))
	}
	s.sweepBufs[s.sweepBufIdx] = recs
	for lo := 0; lo < len(evs); {
		if ctx.Err() != nil {
			return abort()
		}
		hi := lo + 1
		for hi < len(evs) && evs[hi].SwitchID == evs[lo].SwitchID {
			hi++
		}
		be, hasBE := s.fleet.Backend(evs[lo].SwitchID)
		s.batchProbes, s.batchExpects = s.batchProbes[:0], s.batchExpects[:0]
		if hasBE {
			for i := lo; i < hi; i++ {
				if evs[i].Result.Probe != nil {
					s.batchProbes = append(s.batchProbes, evs[i].Result.Probe)
					s.batchExpects = append(s.batchExpects, ExpectPresent)
				}
			}
		}
		var (
			verdicts []Verdict
			obsErrs  []error
		)
		if len(s.batchProbes) > 0 {
			verdicts, obsErrs = ObserveBatch(ctx, be, s.batchProbes, s.batchExpects)
		}
		j := 0
		for i := lo; i < hi; i++ {
			ev := evs[i]
			if hasBE && ev.Result.Probe != nil {
				verdict, err := verdicts[j], obsErrs[j]
				j++
				var div *DivergenceError
				switch {
				case err == nil:
					s.differ.ObserveVerdict(ev, verdict)
				case errors.As(err, &div):
					// A replayed session departed from its recording: the
					// loudest possible judgement, never a quiet skip — a
					// silent divergence would defeat the whole point of
					// deterministic replay.
					s.differ.ObserveVerdict(ev, VerdictUnexpected)
				case errors.Is(err, ErrBackendDisconnected), errors.Is(err, ErrBackendClosed):
					// The backend is down: record presence without judging.
					// Folding unjudged would mark the rule recovered the
					// moment the transport died (a false all-clear mid-
					// outage); dropping the event entirely would make a
					// mid-sweep flap look like the unswept rules left the
					// table, forgetting their outstanding alerts. A skipped
					// observation does neither — and a full-outage round
					// still counts as missed, so a persistent outage
					// surfaces as switch_stalled.
					s.differ.ObserveSkipped(ev)
				default:
					// The probe was never observed (cancelled round): fold
					// the generation result unjudged rather than manufacture
					// a failing verdict — a drain must not page anyone.
					s.differ.Observe(ev)
				}
			} else {
				s.differ.Observe(ev)
			}
			recs = append(recs, ev.Record())
		}
		lo = hi
	}

	// Matched-but-unsampled rules fold as frozen entries: still tracked
	// (their absence from the sweep must not read as "left the table"),
	// never alerted on, streaks and epochs kept.
	if len(plans) > 0 {
		epochs := make(map[uint32]uint64, len(plans))
		for _, ev := range evs {
			epochs[ev.SwitchID] = ev.Epoch
		}
		for _, rp := range plans {
			epoch, ok := epochs[rp.plan.Switch]
			if !ok {
				epoch = rp.epoch
			}
			for _, rid := range rp.plan.Unsampled {
				s.differ.ObserveUnsampled(rp.plan.Switch, epoch, rid)
			}
		}
	}
	if ctx.Err() != nil {
		return abort()
	}

	var alerts []Alert
	if pol == nil {
		alerts = s.differ.EndSweep()
	} else {
		// Only the swept groups' switches participate in this round:
		// unswept groups accrue neither missed-round streaks nor
		// rule-left-table inferences from a round that never probed them.
		participants := make([]uint32, 0, len(plans))
		for _, rp := range plans {
			participants = append(participants, rp.plan.Switch)
		}
		alerts = s.differ.EndSweepScoped(participants)
	}

	// WAL ordering: persist the round (fold state + alerts) before any
	// sink sees the alerts. A crash between the two re-delivers on the
	// next life; the reverse order would lose alerts the operator saw.
	var storeErrs uint64
	if s.store != nil {
		if err := s.store.SaveRound(s.differ.State(), alerts); err != nil {
			storeErrs++
		}
	}

	var sinkErrs uint64
	if len(alerts) > 0 {
		for _, sink := range s.sinks {
			if err := sink.Deliver(ctx, alerts); err != nil {
				sinkErrs++
			}
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepBufs[s.sweepBufIdx] = recs
	s.sweepBufIdx = 1 - s.sweepBufIdx
	s.lastSweep = recs
	s.metrics.Rounds++
	s.liveRounds++
	s.metrics.RulesSwept += uint64(len(recs))
	s.metrics.AlertsTotal += uint64(len(alerts))
	s.metrics.SinkErrors += sinkErrs
	s.metrics.StoreErrors += storeErrs
	for _, a := range alerts {
		s.alertsByType[a.Type.String()]++
	}
	s.metrics.LastRoundRules = len(recs)
	s.metrics.LastRoundMicros = time.Since(start).Microseconds()
	if len(recs) > 0 {
		s.metrics.LastRoundMicrosPerRule = float64(s.metrics.LastRoundMicros) / float64(len(recs))
	} else {
		s.metrics.LastRoundMicrosPerRule = 0
	}
	if len(plans) > 0 {
		// Per-group stats: attribute this round's results to the groups
		// that swept, and advance their round counters (the sampling
		// sequence index the next plan compilation uses).
		bySwitch := make(map[uint32]string, len(plans))
		groupRules := make(map[string]int, len(plans))
		for _, rp := range plans {
			bySwitch[rp.plan.Switch] = rp.plan.Group
			if _, ok := groupRules[rp.plan.Group]; !ok {
				groupRules[rp.plan.Group] = 0 // a group with no results still counts its round
			}
		}
		for i := range recs {
			groupRules[bySwitch[recs[i].Switch]]++
		}
		for g, n := range groupRules {
			gs := s.groupStats[g]
			if gs == nil {
				gs = &GroupMetrics{Group: g}
				s.groupStats[g] = gs
			}
			gs.Rounds++
			gs.RulesCovered += uint64(n)
			gs.LastRoundRules = n
			gs.LastRoundMicros = s.metrics.LastRoundMicros
			if n > 0 {
				gs.LastRoundMicrosPerRule = float64(gs.LastRoundMicros) / float64(n)
			} else {
				gs.LastRoundMicrosPerRule = 0
			}
			s.groupRounds[g]++
		}
	}
	// Mark the completed round on every session trace and flush: a crash
	// loses at most the round in flight, and cmd/monotrace re-drives one
	// SweepRound per round mark.
	s.recMu.Lock()
	for _, rb := range s.recorders {
		rb.MarkRound(s.metrics.Rounds)
		rb.Flush()
	}
	s.recMu.Unlock()
	return alerts
}

// groupEntry is one scheduled policy group in Run's cadence heap.
type groupEntry struct {
	name  string // "" is the no-policy catch-all sweeping everything
	every time.Duration
	due   time.Time
}

// groupHeap orders entries by due time, ties broken by name so the
// schedule is deterministic.
type groupHeap []*groupEntry

func (h groupHeap) Len() int { return len(h) }
func (h groupHeap) Less(i, j int) bool {
	if !h[i].due.Equal(h[j].due) {
		return h[i].due.Before(h[j].due)
	}
	return h[i].name < h[j].name
}
func (h groupHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *groupHeap) Push(x any)   { *h = append(*h, x.(*groupEntry)) }
func (h *groupHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// buildSchedule computes Run's sweep schedule: one entry per populated
// policy group at the group's declared cadence (the service interval
// when it declares none), or a single catch-all entry at the service
// interval when no policy is active or no switch resolves to any group.
// Groups surviving a rebuild keep their due times; new groups are due
// immediately — installing a policy mid-run starts its cadences at once.
func (s *Service) buildSchedule(prev *groupHeap, now time.Time) *groupHeap {
	prevDue := make(map[string]time.Time)
	if prev != nil {
		for _, e := range *prev {
			prevDue[e.name] = e.due
		}
	}
	h := &groupHeap{}
	add := func(name string, every time.Duration) {
		if every <= 0 {
			every = s.set.steadyInterval
		}
		due, ok := prevDue[name]
		if !ok {
			due = now
		}
		heap.Push(h, &groupEntry{name: name, every: every, due: due})
	}
	pol := s.Policy()
	if pol != nil {
		seen := make(map[string]bool)
		for _, id := range s.fleet.Switches() {
			g := pol.groupOf(id, s.tagsOf(id))
			if seen[g] {
				continue
			}
			seen[g] = true
			add(g, pol.everyOf(g))
		}
	}
	if h.Len() == 0 {
		add("", 0)
	}
	return h
}

// Run drives steady-state sweep rounds until the context is cancelled.
// Without a policy every round sweeps everything on WithSteadyInterval;
// with one, each policy group sweeps at its own cadence (a min-heap of
// next-due groups), rebuilt whenever the policy is swapped or a switch
// registers. Cancellation aborts an in-flight round cleanly — the
// partial fold is discarded rather than turned into false alerts — then
// the service is marked draining for /healthz and the context's error is
// returned.
func (s *Service) Run(ctx context.Context) error {
	// A previous Run marked the service draining on its way out; a new
	// Run is the restart-lifecycle moment to clear it, or /healthz
	// reports a healthy, sweeping service as draining forever.
	s.mu.Lock()
	s.draining = false
	s.mu.Unlock()
	drain := func() error {
		s.mu.Lock()
		s.draining = true
		s.mu.Unlock()
		return ctx.Err()
	}
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	var (
		sched *groupHeap
		ver   uint64
	)
	for {
		if v := s.planVersion(); sched == nil || v != ver {
			sched = s.buildSchedule(sched, time.Now())
			ver = v
		}
		next := (*sched)[0]
		timer.Reset(time.Until(next.due))
		select {
		case <-ctx.Done():
			if !timer.Stop() {
				<-timer.C
			}
			return drain()
		case <-timer.C:
		}
		s.SweepRound(ctx, sweepArgs(next.name)...)
		if ctx.Err() != nil {
			return drain()
		}
		next.due = next.due.Add(next.every)
		if !next.due.After(time.Now()) {
			// The round overran its cadence: rebase instead of sweeping a
			// burst of make-up rounds.
			next.due = time.Now().Add(next.every)
		}
		heap.Fix(sched, 0)
	}
}

// sweepArgs turns a schedule entry name into SweepRound's group list
// (the catch-all entry sweeps every group).
func sweepArgs(name string) []string {
	if name == "" {
		return nil
	}
	return []string{name}
}

// Alerts returns a snapshot of the alert ring (oldest first).
func (s *Service) Alerts() []Alert { return s.ring.Alerts() }

// LastSweep returns the most recent round's per-rule records.
func (s *Service) LastSweep() []ResultRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]ResultRecord(nil), s.lastSweep...)
}

// Close shuts the service down: every switch backend and every alert sink
// is closed. It does not stop a concurrently running Run loop — cancel
// its context first. Close is idempotent and safe to call from several
// goroutines concurrently (including concurrently with a Run drain):
// the shutdown runs once and every caller gets the first call's error.
func (s *Service) Close() error {
	s.closeOnce.Do(func() { s.closeErr = s.doClose() })
	return s.closeErr
}

// doClose is the single-execution body of Close. It serializes against an
// in-flight sweep round (sweepMu), so backends and the store are never
// closed under a round that is still folding through them.
func (s *Service) doClose() error {
	s.sweepMu.Lock()
	defer s.sweepMu.Unlock()
	var firstErr error
	for _, id := range s.fleet.Switches() {
		if be, ok := s.fleet.Backend(id); ok {
			if err := be.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	for _, sink := range s.sinks {
		if err := sink.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if s.store != nil {
		if err := s.store.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Resume restores the service from its Store after a process restart:
// switches are re-registered (proxy backends re-dial their switches),
// expected tables are re-installed and their table-change epochs
// fast-forwarded to the persisted values, the diff engine's folded state
// is restored, and the persisted alert history refills the in-memory ring
// backing GET /alerts. Restored alerts go only to the ring — webhook and
// log sinks already delivered them in the previous life. After Resume the
// next sweep round diffs against the pre-restart history: an unchanged
// fleet raises no alerts, a rule that was failing keeps its streak, and a
// rule healed during the outage raises exactly one rule_recovered.
//
// Resume is a no-op without a store. Call it once, before Run or any
// sweep. Switches that fail to re-register (an unreachable proxy switch)
// are skipped and reported in the joined error; the rest of the fleet
// resumes.
func (s *Service) Resume(ctx context.Context) error {
	if s.store == nil {
		return nil
	}
	// The service is not routable while the WAL replays: GET /readyz
	// reports resuming until the flag clears AND the first post-resume
	// round completes, so a cluster coordinator never fans work out to a
	// replica whose expected tables are still being rebuilt.
	s.mu.Lock()
	s.resuming = true
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.resuming = false
		s.mu.Unlock()
	}()
	state, err := s.store.Load()
	if err != nil {
		return fmt.Errorf("monocle: resume: %w", err)
	}
	var errs []error
	ids := make([]uint32, 0, len(state.Switches))
	for id := range state.Switches {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	diffState := DifferState{Rounds: state.Rounds, Seq: state.AlertSeq, Switches: make(map[uint32]SwitchDiffState)}
	for _, id := range ids {
		st := state.Switches[id]
		if st.HasDiff {
			diffState.Switches[id] = st.Diff
		}
		if st.Spec.ID == 0 {
			continue // fold state without a registration record
		}
		v, err := s.AddSwitch(st.Spec)
		if err != nil {
			errs = append(errs, fmt.Errorf("switch %d: %w", id, err))
			continue
		}
		if len(st.Rules) > 0 {
			rules := make([]*Rule, 0, len(st.Rules))
			for i := range st.Rules {
				r, err := st.Rules[i].rule()
				if err != nil {
					errs = append(errs, fmt.Errorf("switch %d rule %d: %w", id, st.Rules[i].ID, err))
					continue
				}
				rules = append(rules, r)
			}
			// A sim data plane died with the old process: replay the
			// snapshot into the fresh table. A proxy backend's data plane
			// is the live switch itself — the rules are still on the
			// hardware, so only the expected side is restored (re-applying
			// would rewrite the data plane the monitor is supposed to be
			// verifying).
			if be, ok := s.fleet.Backend(id); ok {
				if _, sim := UnwrapBackend(be).(*SimBackend); sim {
					for _, r := range rules {
						if err := be.Apply(BackendOp{Op: "add", Rule: r}); err != nil {
							errs = append(errs, fmt.Errorf("switch %d rule %d: %w", id, r.ID, err))
						}
					}
				}
			}
			if err := v.Install(rules...); err != nil {
				errs = append(errs, fmt.Errorf("switch %d: %w", id, err))
			}
		}
		v.restoreEpoch(st.Epoch)
	}
	// The previous life's policy comes back after the switches so the
	// swap re-applies overrides to the restored fleet. An explicit
	// WithPolicy/WithPolicyFile takes precedence over the persisted text.
	if state.Policy != "" && s.Policy() == nil {
		if p, err := ParsePolicy(state.Policy); err == nil {
			s.SetPolicy(p)
		} else {
			errs = append(errs, fmt.Errorf("persisted policy: %w", err))
			s.mu.Lock()
			s.metrics.PolicyErrors++
			s.mu.Unlock()
		}
	}
	s.differ.Restore(diffState)
	if len(state.Alerts) > 0 {
		if err := s.ring.Deliver(ctx, state.Alerts); err != nil {
			errs = append(errs, err)
		}
	}
	s.mu.Lock()
	s.metrics.Rounds = state.Rounds
	s.metrics.AlertsTotal = uint64(len(state.Alerts))
	for _, a := range state.Alerts {
		s.alertsByType[a.Type.String()]++
	}
	s.mu.Unlock()
	return errors.Join(errs...)
}

// Metrics returns a snapshot of the service counters with per-switch
// epoch and cache detail attached.
func (s *Service) Metrics() ServiceMetrics {
	s.mu.Lock()
	m := s.metrics
	if len(s.alertsByType) > 0 {
		m.AlertsByType = make(map[string]uint64, len(s.alertsByType))
		for k, v := range s.alertsByType {
			m.AlertsByType[k] = v
		}
	}
	groups := make(map[string]GroupMetrics, len(s.groupStats))
	for g, gs := range s.groupStats {
		groups[g] = *gs
	}
	s.mu.Unlock()
	for _, id := range s.fleet.Switches() {
		v, ok := s.fleet.Verifier(id)
		if !ok {
			continue
		}
		m.Switches = append(m.Switches, s.switchMetrics(id, v))
	}
	if pol := s.Policy(); pol != nil {
		// Current membership counts; a populated group appears even
		// before its first round.
		for _, id := range s.fleet.Switches() {
			g := pol.groupOf(id, s.tagsOf(id))
			gm := groups[g]
			gm.Group = g
			gm.Switches++
			groups[g] = gm
		}
	}
	for _, gm := range groups {
		m.Groups = append(m.Groups, gm)
	}
	sort.Slice(m.Groups, func(i, j int) bool { return m.Groups[i].Group < m.Groups[j].Group })
	return m
}

// switchMetrics builds one switch's metrics slice, including the event
// drop count of drivers that report one.
func (s *Service) switchMetrics(id uint32, v *Verifier) SwitchMetrics {
	sm := SwitchMetrics{Switch: id, Epoch: v.Epoch(), Rules: v.Len(), Cache: v.CacheStats()}
	if be, ok := s.fleet.Backend(id); ok {
		if c, ok := be.(EventDropCounter); ok {
			sm.EventsDropped = c.EventDrops()
		}
	}
	return sm
}

// Handler returns the monocled HTTP control surface:
//
//	POST /switches            add a switch (SwitchSpec)
//	GET  /switches            list switches with epochs and rule counts
//	POST /switches/{id}/rules apply a RuleOp, returns UpdateReply
//	POST /sweep               run one sweep round now (?group= limits it
//	                          to named policy groups), returns its alerts
//	GET  /policy              active policy source text (404 when none)
//	PUT  /policy              validate-then-swap the monitoring policy
//	                          (422 with line/column on a parse error,
//	                          leaving the running plan untouched; an
//	                          empty body clears the policy)
//	GET  /sweeps              last round's ResultRecords, one JSON line each
//	GET  /alerts              retained alerts, one JSON line each
//	GET  /healthz             combined liveness/readiness/drain view
//	GET  /livez               liveness only: 200 while the process serves
//	GET  /readyz              readiness: 200 only after Resume finished
//	                          and the first round of this life completed
//	                          (503 with the blocking state otherwise) — a
//	                          cluster coordinator routes on this, never
//	                          on /livez, so a replica still replaying its
//	                          WAL receives no traffic
//	GET  /metrics             ServiceMetrics (JSON; Prometheus text with
//	                          Accept: text/plain)
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /switches", s.handleAddSwitch)
	mux.HandleFunc("GET /switches", s.handleListSwitches)
	mux.HandleFunc("POST /switches/{id}/rules", s.handleRules)
	mux.HandleFunc("POST /sweep", s.handleSweepNow)
	mux.HandleFunc("GET /policy", s.handleGetPolicy)
	mux.HandleFunc("PUT /policy", s.handlePutPolicy)
	mux.HandleFunc("GET /sweeps", s.handleSweeps)
	mux.HandleFunc("GET /alerts", s.handleAlerts)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /livez", s.handleLivez)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func (s *Service) handleAddSwitch(w http.ResponseWriter, r *http.Request) {
	var spec SwitchSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if _, err := s.AddSwitch(spec); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrDuplicateSwitch) {
			status = http.StatusConflict
		}
		httpError(w, status, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"switch": spec.ID})
}

func (s *Service) handleListSwitches(w http.ResponseWriter, _ *http.Request) {
	var out []SwitchMetrics
	for _, id := range s.fleet.Switches() {
		if v, ok := s.fleet.Verifier(id); ok {
			out = append(out, s.switchMetrics(id, v))
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Service) handleRules(w http.ResponseWriter, r *http.Request) {
	id64, err := strconv.ParseUint(r.PathValue("id"), 10, 32)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad switch id: %w", err))
		return
	}
	var op RuleOp
	if err := json.NewDecoder(r.Body).Decode(&op); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	reply, err := s.ApplyRule(uint32(id64), op)
	if err != nil {
		status := http.StatusBadRequest
		switch {
		case errors.Is(err, ErrNotFound):
			status = http.StatusNotFound
		case errors.Is(err, ErrDuplicateID), errors.Is(err, ErrSamePriorityOverlap):
			status = http.StatusConflict
		case errors.Is(err, ErrBackendDisconnected):
			// Transient: the proxy driver is redialing its switch with
			// backoff; the client should retry after backend_reconnected.
			status = http.StatusServiceUnavailable
		}
		httpError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, reply)
}

func (s *Service) handleSweepNow(w http.ResponseWriter, r *http.Request) {
	// Deliberately not the request context: a client disconnect mid-sweep
	// would abort the round, and an operator-requested sweep should
	// complete once started.
	alerts := s.SweepRound(context.Background(), r.URL.Query()["group"]...)
	s.mu.Lock()
	round := s.metrics.Rounds
	rules := s.metrics.LastRoundRules
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"round": round, "rules": rules, "alerts": alerts,
	})
}

func (s *Service) handleGetPolicy(w http.ResponseWriter, _ *http.Request) {
	pol := s.Policy()
	if pol == nil {
		httpError(w, http.StatusNotFound, errors.New("no active policy"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte(pol.Source()))
}

// handlePutPolicy validates, then swaps: a body that does not parse is
// rejected with 422 Unprocessable Entity carrying the offending source
// line and column, and the running plan stays untouched. An empty body
// clears the active policy.
func (s *Service) handlePutPolicy(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if strings.TrimSpace(string(body)) == "" {
		s.SetPolicy(nil)
		writeJSON(w, http.StatusOK, map[string]any{"policy": nil})
		return
	}
	p, err := ParsePolicy(string(body))
	if err != nil {
		var perr *PolicyError
		if errors.As(err, &perr) {
			writeJSON(w, http.StatusUnprocessableEntity, map[string]any{
				"error": perr.Error(), "line": perr.Line, "column": perr.Col,
			})
		} else {
			httpError(w, http.StatusUnprocessableEntity, err)
		}
		return
	}
	s.SetPolicy(p)
	assignments := make(map[string][]uint32)
	for _, id := range s.fleet.Switches() {
		g := p.groupOf(id, s.tagsOf(id))
		assignments[g] = append(assignments[g], id)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"groups":      p.GroupNames(),
		"assignments": assignments,
	})
}

func (s *Service) handleSweeps(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	recs := append([]ResultRecord(nil), s.lastSweep...)
	s.mu.Unlock()
	writeJSONLines(w, len(recs), func(enc *json.Encoder, i int) error {
		return enc.Encode(recs[i])
	})
}

func (s *Service) handleAlerts(w http.ResponseWriter, _ *http.Request) {
	alerts := s.Alerts()
	writeJSONLines(w, len(alerts), func(enc *json.Encoder, i int) error {
		return enc.Encode(alerts[i])
	})
}

// healthState is one consistent snapshot of the liveness/readiness axes.
type healthState struct {
	draining   bool
	resuming   bool
	rounds     uint64
	liveRounds uint64
}

func (s *Service) healthState() healthState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return healthState{
		draining:   s.draining,
		resuming:   s.resuming,
		rounds:     s.metrics.Rounds,
		liveRounds: s.liveRounds,
	}
}

// ready reports whether the service should receive routed traffic: the
// WAL replay (Resume) has finished, at least one sweep round of this
// process life has completed, and the service is not draining.
func (h healthState) ready() bool {
	return !h.resuming && !h.draining && h.liveRounds > 0
}

// Ready reports the service's readiness (the GET /readyz state): Resume
// is not in flight, the first sweep round of this process life has
// completed, and the service is not draining.
func (s *Service) Ready() bool { return s.healthState().ready() }

// handleHealthz is the combined health view (kept for operators and
// backward compatibility; orchestrators should probe /livez and /readyz).
func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	h := s.healthState()
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":       true,
		"ready":    h.ready(),
		"draining": h.draining,
		"resuming": h.resuming,
		"switches": s.fleet.Size(),
		"rounds":   h.rounds,
	})
}

// handleLivez reports process liveness only: if this handler runs at all,
// the process is alive — restarts are for the orchestrator to decide on
// timeouts, not on body content.
func (s *Service) handleLivez(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

// handleReadyz reports routability: 200 only once Resume has completed
// and the first sweep round of this life has finished (503 otherwise,
// with the blocking state in the body). A restarted replica behind a
// cluster coordinator therefore serves no routed traffic until its WAL
// replay is done and its diff engine has re-proven the fleet once.
func (s *Service) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	h := s.healthState()
	status := http.StatusOK
	if !h.ready() {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{
		"ready":    h.ready(),
		"resuming": h.resuming,
		"draining": h.draining,
		"rounds":   h.rounds,
		"switches": s.fleet.Size(),
	})
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsPrometheus(r.Header.Get("Accept")) {
		s.writePrometheus(w)
		return
	}
	writeJSON(w, http.StatusOK, s.Metrics())
}

// wantsPrometheus reports whether the Accept header asks for the
// Prometheus text exposition format. JSON stays the default; scrapers
// sending text/plain or OpenMetrics media types get the text format.
func wantsPrometheus(accept string) bool {
	if strings.Contains(accept, "application/json") {
		return false
	}
	return strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "application/openmetrics-text")
}

// writePrometheus renders the service counters in the Prometheus text
// exposition format (version 0.0.4): sweep-round totals, alert counts by
// type, the last round's per-rule cost, and per-switch epoch/rule/cache
// gauges.
func (s *Service) writePrometheus(w http.ResponseWriter) {
	m := s.Metrics()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("monocle_sweep_rounds_total", "Completed sweep rounds.", m.Rounds)
	counter("monocle_rules_swept_total", "Per-rule results across all rounds.", m.RulesSwept)
	counter("monocle_sink_errors_total", "Failed alert-sink deliveries.", m.SinkErrors)
	counter("monocle_store_errors_total", "Failed persistence-store writes.", m.StoreErrors)
	counter("monocle_policy_errors_total", "Rejected monitoring-policy loads.", m.PolicyErrors)

	fmt.Fprintf(&b, "# HELP monocle_alerts_total Alerts raised, by type.\n# TYPE monocle_alerts_total counter\n")
	for t := AlertRuleFailing; t <= AlertBackendFlapping; t++ {
		fmt.Fprintf(&b, "monocle_alerts_total{type=%q} %d\n", t.String(), m.AlertsByType[t.String()])
	}

	fmt.Fprintf(&b, "# HELP monocle_last_round_rules Result count of the most recent round.\n# TYPE monocle_last_round_rules gauge\nmonocle_last_round_rules %d\n", m.LastRoundRules)
	fmt.Fprintf(&b, "# HELP monocle_last_round_us_per_rule Per-rule cost of the most recent round in microseconds.\n# TYPE monocle_last_round_us_per_rule gauge\nmonocle_last_round_us_per_rule %g\n", m.LastRoundMicrosPerRule)

	if len(m.Groups) > 0 {
		perGroup := func(name, help, kind string, value func(GroupMetrics) string) {
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
			for _, g := range m.Groups {
				fmt.Fprintf(&b, "%s{group=%q} %s\n", name, g.Group, value(g))
			}
		}
		perGroup("monocle_group_switches", "Fleet members per policy group.", "gauge",
			func(g GroupMetrics) string { return strconv.Itoa(g.Switches) })
		perGroup("monocle_group_rounds_total", "Completed sweep rounds per policy group.", "counter",
			func(g GroupMetrics) string { return strconv.FormatUint(g.Rounds, 10) })
		perGroup("monocle_group_rules_covered_total", "Per-rule results per policy group across all rounds.", "counter",
			func(g GroupMetrics) string { return strconv.FormatUint(g.RulesCovered, 10) })
		perGroup("monocle_group_last_round_us_per_rule", "Per-rule cost of the group's most recent round in microseconds.", "gauge",
			func(g GroupMetrics) string { return strconv.FormatFloat(g.LastRoundMicrosPerRule, 'g', -1, 64) })
	}

	sort.Slice(m.Switches, func(i, j int) bool { return m.Switches[i].Switch < m.Switches[j].Switch })
	perSwitch := func(name, help, kind string, value func(SwitchMetrics) int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
		for _, sw := range m.Switches {
			fmt.Fprintf(&b, "%s{switch=\"%d\"} %d\n", name, sw.Switch, value(sw))
		}
	}
	perSwitch("monocle_switch_epoch", "Table-change epoch per switch.", "gauge",
		func(sw SwitchMetrics) int64 { return int64(sw.Epoch) })
	perSwitch("monocle_switch_rules", "Installed rules per switch.", "gauge",
		func(sw SwitchMetrics) int64 { return int64(sw.Rules) })
	perSwitch("monocle_switch_cache_hits_total", "Session-cache hits per switch.", "counter",
		func(sw SwitchMetrics) int64 { return int64(sw.Cache.Hits) })
	perSwitch("monocle_switch_cache_syncs_total", "Session-cache epoch syncs per switch.", "counter",
		func(sw SwitchMetrics) int64 { return int64(sw.Cache.Syncs) })
	perSwitch("monocle_switch_cache_delta_rules_total", "Incrementally recompiled rules per switch.", "counter",
		func(sw SwitchMetrics) int64 { return int64(sw.Cache.DeltaRules) })
	perSwitch("monocle_switch_cache_rebuilds_total", "Full library rebuilds per switch.", "counter",
		func(sw SwitchMetrics) int64 { return int64(sw.Cache.Rebuilds) })
	perSwitch("monocle_backend_events_dropped_total", "Driver lifecycle events dropped from the backend event stream per switch.", "counter",
		func(sw SwitchMetrics) int64 { return int64(sw.EventsDropped) })
	w.Write([]byte(b.String()))
}

// httpError writes a JSON error body.
func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// writeJSON writes one JSON document.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeJSONLines writes n JSON lines (ndjson).
func writeJSONLines(w http.ResponseWriter, n int, line func(*json.Encoder, int) error) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for i := 0; i < n; i++ {
		if err := line(enc, i); err != nil {
			return
		}
	}
}

// fieldIDs maps OpenFlow 1.0 field names to FieldIDs.
var fieldIDs = func() map[string]FieldID {
	m := make(map[string]FieldID, NumFields)
	for f := FieldID(0); f < NumFields; f++ {
		m[f.String()] = f
	}
	return m
}()

// rule builds the flow rule a RuleSpec describes.
func (rs *RuleSpec) rule() (*Rule, error) {
	m := MatchAll()
	for name, val := range rs.Match {
		f, ok := fieldIDs[name]
		if !ok {
			return nil, fmt.Errorf("monocle: unknown match field %q", name)
		}
		t, err := parseTernary(f, val)
		if err != nil {
			return nil, err
		}
		m = m.With(f, t)
	}
	actions, err := actionList(rs.Actions)
	if err != nil {
		return nil, err
	}
	r := &Rule{ID: rs.ID, Priority: rs.Priority, Match: m, Actions: actions}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return r, nil
}

// actionList builds a rule action list from specs.
func actionList(specs []ActionSpec) ([]Action, error) {
	var out []Action
	for _, a := range specs {
		switch {
		case a.Set != nil:
			f, ok := fieldIDs[a.Set.Field]
			if !ok {
				return nil, fmt.Errorf("monocle: unknown set field %q", a.Set.Field)
			}
			out = append(out, SetField(f, a.Set.Value))
		case len(a.ECMP) > 0:
			ports := make([]PortID, len(a.ECMP))
			for i, p := range a.ECMP {
				ports[i] = PortID(p)
			}
			out = append(out, ECMP(ports...))
		case a.Output != 0:
			out = append(out, Output(PortID(a.Output)))
		default:
			return nil, fmt.Errorf("monocle: action needs output, ecmp, or set")
		}
	}
	return out, nil
}

// cloneActions copies an action list so the expected and actual tables
// never share Action slices.
func cloneActions(actions []Action) []Action {
	out := make([]Action, len(actions))
	copy(out, actions)
	for i := range out {
		if len(out[i].Ports) > 0 {
			out[i].Ports = append([]PortID(nil), out[i].Ports...)
		}
	}
	return out
}

// parseTernary parses one match value: "5", "0x800", "10.0.0.0",
// "10.0.0.0/8", "value/prefixlen", or "value&mask" (an arbitrary ternary
// mask — the persisted form of matches that are neither exact nor
// prefix).
func parseTernary(f FieldID, s string) (Ternary, error) {
	if valPart, maskPart, hasMask := strings.Cut(s, "&"); hasMask {
		v, err := parseFieldValue(valPart)
		if err != nil {
			return Ternary{}, fmt.Errorf("monocle: field %s: %w", f, err)
		}
		m, err := parseFieldValue(maskPart)
		if err != nil {
			return Ternary{}, fmt.Errorf("monocle: field %s: bad mask: %w", f, err)
		}
		full := header.WidthMask(f)
		if m&^full != 0 {
			return Ternary{}, fmt.Errorf("monocle: field %s: mask 0x%x wider than the field", f, m)
		}
		return Ternary{Value: v & m, Mask: m}, nil
	}
	valPart, plenPart, hasPlen := strings.Cut(s, "/")
	v, err := parseFieldValue(valPart)
	if err != nil {
		return Ternary{}, fmt.Errorf("monocle: field %s: %w", f, err)
	}
	if !hasPlen {
		return Exact(f, v), nil
	}
	plen, err := strconv.Atoi(plenPart)
	if err != nil || plen < 0 || plen > FieldWidth(f) {
		return Ternary{}, fmt.Errorf("monocle: field %s: bad prefix length %q", f, plenPart)
	}
	return Prefix(f, v, plen), nil
}

// parseFieldValue parses a decimal/0x-hex integer or an IPv4 dotted quad.
func parseFieldValue(s string) (uint64, error) {
	if strings.Contains(s, ".") {
		parts := strings.Split(s, ".")
		if len(parts) != 4 {
			return 0, fmt.Errorf("bad dotted quad %q", s)
		}
		var v uint64
		for _, p := range parts {
			o, err := strconv.ParseUint(p, 10, 8)
			if err != nil {
				return 0, fmt.Errorf("bad dotted quad %q", s)
			}
			v = v<<8 | o
		}
		return v, nil
	}
	return strconv.ParseUint(s, 0, 64)
}
