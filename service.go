package monocle

// The monocled service layer: a long-running HTTP control surface over a
// Fleet plus a simulated per-switch data plane, with the cross-epoch diff
// engine folding every sweep into alerts. The service owns the sweep loop
// (Run), evaluates every generated probe against the switch's data-plane
// table, and exposes the whole lifecycle over net/http: switches are
// added, rules installed/modified/deleted (driving the dynamic-update
// confirmation path), sweeps and alerts read back as JSON lines, and
// health/metrics polled. Rule operations can target the expected table,
// the data plane, or both — mutating only the data plane is exactly the
// "hardware diverged behind the controller's back" fault the paper's
// monitoring exists to catch.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"context"
)

// maxServiceAlerts bounds the retained alert log (oldest dropped first).
const maxServiceAlerts = 4096

// Service is the long-running monocled fleet service. Build one with
// NewService, mount Handler on an HTTP server, and drive the sweep loop
// with Run; or call SweepRound directly for externally-paced sweeps.
type Service struct {
	set    settings
	fleet  *Fleet
	differ *Differ

	mu        sync.Mutex
	actual    map[uint32]*Table
	lastSweep []ResultRecord
	alerts    []Alert
	metrics   ServiceMetrics
	draining  bool
}

// ServiceMetrics is the GET /metrics payload.
type ServiceMetrics struct {
	// Rounds counts completed sweep rounds.
	Rounds uint64 `json:"rounds"`
	// RulesSwept counts per-rule results across all rounds.
	RulesSwept uint64 `json:"rules_swept"`
	// AlertsTotal counts alerts raised across all rounds.
	AlertsTotal uint64 `json:"alerts_total"`
	// LastRoundRules is the result count of the most recent round.
	LastRoundRules int `json:"last_round_rules"`
	// LastRoundMicros is the most recent round's wall time in µs.
	LastRoundMicros int64 `json:"last_round_micros"`
	// LastRoundMicrosPerRule is the most recent round's per-rule cost.
	LastRoundMicrosPerRule float64 `json:"last_round_us_per_rule"`
	// Switches carries the per-switch epoch and cache snapshots.
	Switches []SwitchMetrics `json:"switches,omitempty"`
}

// SwitchMetrics is one switch's slice of GET /metrics.
type SwitchMetrics struct {
	Switch uint32     `json:"switch"`
	Epoch  uint64     `json:"epoch"`
	Rules  int        `json:"rules"`
	Cache  CacheStats `json:"cache"`
}

// SwitchSpec is the POST /switches request body.
type SwitchSpec struct {
	// ID is the switch id (required, non-zero).
	ID uint32 `json:"id"`
	// Tag pins the probe tag (default: the switch id).
	Tag uint64 `json:"tag,omitempty"`
	// Ports restricts probe in_port values to the switch's real ports.
	Ports []uint16 `json:"ports,omitempty"`
	// Miss is the table-miss behaviour: "drop" (default) or "controller".
	Miss string `json:"miss,omitempty"`
}

// RuleSpec is the JSON form of one rule in rule operations.
type RuleSpec struct {
	ID       uint64 `json:"id"`
	Priority int    `json:"priority"`
	// Match maps OpenFlow 1.0 field names (dl_type, nw_src, ...) to
	// values: decimal or 0x-hex integers, dotted quads, and
	// value/prefixlen prefixes (nw_src/nw_dst style).
	Match   map[string]string `json:"match,omitempty"`
	Actions []ActionSpec      `json:"actions,omitempty"`
}

// ActionSpec is the JSON form of one rule action: exactly one of Output,
// ECMP, or Set is used. An empty Actions list on a RuleSpec drops.
type ActionSpec struct {
	Output uint16        `json:"output,omitempty"`
	ECMP   []uint16      `json:"ecmp,omitempty"`
	Set    *SetFieldSpec `json:"set,omitempty"`
}

// SetFieldSpec is the JSON form of a set-field rewrite action.
type SetFieldSpec struct {
	Field string `json:"field"`
	Value uint64 `json:"value"`
}

// RuleOp is the POST /switches/{id}/rules request body.
type RuleOp struct {
	// Op is "add", "modify", or "delete".
	Op string `json:"op"`
	// Rule is the rule to add (op=add).
	Rule *RuleSpec `json:"rule,omitempty"`
	// ID selects the rule to modify/delete.
	ID uint64 `json:"id,omitempty"`
	// Actions is the replacement action list (op=modify).
	Actions []ActionSpec `json:"actions,omitempty"`
	// Dataplane targets the operation: "both" (default — the normal
	// controller path: expected table and data plane move together),
	// "expected" (the controller believes the change happened but the
	// hardware never applied it), or "actual" (the hardware changed
	// behind the verifier's back). The last two are the fault-injection
	// hooks continuous monitoring exists to catch.
	Dataplane string `json:"dataplane,omitempty"`
}

// UpdateReply is the POST /switches/{id}/rules response body.
type UpdateReply struct {
	Switch uint32 `json:"switch"`
	Rule   uint64 `json:"rule"`
	Op     string `json:"op"`
	// Verdict is the dynamic-update confirmation probe's judgement
	// against the data plane ("confirmed"/"absent"/"unexpected"), or
	// "unmonitorable"/"none" when no probe exists. For deletions,
	// "absent" is the success verdict — the probe fell through.
	Verdict string `json:"verdict,omitempty"`
	// Record is the confirmation probe's result record, when one exists.
	Record *ResultRecord `json:"record,omitempty"`
}

// NewService returns an empty fleet service. The options parameterize the
// embedded Fleet (WithWorkers, WithSteadyInterval, per-switch defaults)
// and the diff engine (WithDebounce, WithStallThreshold, WithFlapWindow).
func NewService(opts ...Option) *Service {
	set := defaultSettings()
	set.apply(opts)
	return &Service{
		set:    set,
		fleet:  NewFleet(opts...),
		differ: NewDiffer(opts...),
		actual: make(map[uint32]*Table),
	}
}

// Fleet returns the service's underlying fleet (programmatic access from
// the same process; the HTTP surface is a thin layer over it).
func (s *Service) Fleet() *Fleet { return s.fleet }

// Differ returns the service's diff engine.
func (s *Service) Differ() *Differ { return s.differ }

// AddSwitch registers a switch with the service: a fleet Verifier for the
// expected table plus a simulated data-plane table that sweeps are judged
// against. The HTTP POST /switches endpoint calls this.
func (s *Service) AddSwitch(spec SwitchSpec) (*Verifier, error) {
	if spec.ID == 0 {
		return nil, fmt.Errorf("monocle: switch id must be non-zero")
	}
	// Default to the service-level option (WithTableMiss), not MissDrop.
	miss := s.set.miss
	switch spec.Miss {
	case "":
	case "drop":
		miss = MissDrop
	case "controller":
		miss = MissController
	default:
		return nil, fmt.Errorf("monocle: unknown miss behaviour %q", spec.Miss)
	}
	var opts []Option
	opts = append(opts, WithTableMiss(miss))
	if spec.Tag != 0 {
		opts = append(opts, WithProbeTag(spec.Tag))
	}
	if len(spec.Ports) > 0 {
		ports := make([]PortID, len(spec.Ports))
		for i, p := range spec.Ports {
			ports[i] = PortID(p)
		}
		opts = append(opts, WithPorts(ports...))
	}
	v, err := s.fleet.AddSwitch(spec.ID, opts...)
	if err != nil {
		return nil, err
	}
	actual := NewTable()
	actual.Miss = miss
	s.mu.Lock()
	s.actual[spec.ID] = actual
	s.mu.Unlock()
	return v, nil
}

// ApplyRule executes one rule operation against switch id, updating the
// expected table and/or the data plane per op.Dataplane, and judges the
// dynamic-update confirmation probe against the data plane.
func (s *Service) ApplyRule(id uint32, op RuleOp) (UpdateReply, error) {
	v, ok := s.fleet.Verifier(id)
	if !ok {
		return UpdateReply{}, ErrNotFound
	}
	expected := op.Dataplane == "" || op.Dataplane == "both" || op.Dataplane == "expected"
	dataplane := op.Dataplane == "" || op.Dataplane == "both" || op.Dataplane == "actual"
	if !expected && !dataplane {
		return UpdateReply{}, fmt.Errorf("monocle: unknown dataplane target %q", op.Dataplane)
	}
	s.mu.Lock()
	actual := s.actual[id]
	s.mu.Unlock()
	// Switches registered directly on the underlying Fleet have no
	// data-plane model; a mutation targeting it cannot be applied.
	if dataplane && actual == nil {
		return UpdateReply{}, fmt.Errorf("monocle: switch %d has no data-plane model (registered outside the service); use dataplane:\"expected\"", id)
	}

	// unprobeable reports genErr is a structural no-probe-exists sentinel:
	// the table mutation itself succeeded, so the operation must not turn
	// into an HTTP error (the state did change) — it surfaces as an
	// "unmonitorable" verdict instead.
	unprobeable := func(err error) bool {
		return errors.Is(err, ErrUnmonitorable) || errors.Is(err, ErrRewritesProbeField)
	}
	var (
		p      *Probe
		genErr error
		ruleID uint64
	)
	switch op.Op {
	case "add":
		if op.Rule == nil {
			return UpdateReply{}, fmt.Errorf("monocle: add needs a rule")
		}
		r, err := op.Rule.rule()
		if err != nil {
			return UpdateReply{}, err
		}
		ruleID = r.ID
		// Update the data plane first so the confirmation probe is
		// judged against post-update hardware state (the normal path).
		if dataplane {
			s.mu.Lock()
			err = actual.Insert(r.Clone())
			s.mu.Unlock()
			if err != nil {
				return UpdateReply{}, err
			}
		}
		if expected {
			p, genErr = v.Add(r)
			if genErr != nil && !unprobeable(genErr) {
				return UpdateReply{}, genErr
			}
		}
	case "modify":
		actions, err := actionList(op.Actions)
		if err != nil {
			return UpdateReply{}, err
		}
		ruleID = op.ID
		if dataplane {
			s.mu.Lock()
			err = actual.Modify(op.ID, cloneActions(actions))
			s.mu.Unlock()
			if err != nil {
				return UpdateReply{}, err
			}
		}
		if expected {
			p, genErr = v.Modify(op.ID, actions)
			if genErr != nil && !unprobeable(genErr) {
				return UpdateReply{}, genErr
			}
		}
	case "delete":
		ruleID = op.ID
		if expected {
			p, genErr = v.Delete(op.ID)
			if genErr != nil && !unprobeable(genErr) {
				return UpdateReply{}, genErr
			}
		}
		if dataplane {
			s.mu.Lock()
			err := actual.Delete(op.ID)
			s.mu.Unlock()
			if err != nil {
				return UpdateReply{}, err
			}
		}
	default:
		return UpdateReply{}, fmt.Errorf("monocle: unknown op %q", op.Op)
	}

	reply := UpdateReply{Switch: id, Rule: ruleID, Op: op.Op, Verdict: "none"}
	switch {
	case unprobeable(genErr):
		reply.Verdict = "unmonitorable"
	case p != nil && actual != nil:
		s.mu.Lock()
		verdict := EvaluateProbe(p, actual)
		s.mu.Unlock()
		reply.Verdict = verdict.String()
		rec := NewResultRecord(id, v.Epoch(), ProbeResult{Rule: &Rule{ID: ruleID}, Probe: p})
		reply.Record = &rec
	}
	return reply, nil
}

// SweepRound runs one fleet sweep, judges every generated probe against
// its switch's data plane, feeds the diff engine, finalizes the round,
// and returns the alerts it raised. Run calls this on the steady
// interval; tests and externally-paced deployments call it directly (or
// through POST /sweep).
func (s *Service) SweepRound(ctx context.Context) []Alert {
	start := time.Now()
	evs := s.fleet.Sweep(ctx)

	s.mu.Lock()
	defer s.mu.Unlock()
	recs := make([]ResultRecord, 0, len(evs))
	for _, ev := range evs {
		if actual := s.actual[ev.SwitchID]; actual != nil && ev.Result.Probe != nil {
			s.differ.ObserveVerdict(ev, EvaluateProbe(ev.Result.Probe, actual))
		} else {
			s.differ.Observe(ev)
		}
		recs = append(recs, ev.Record())
	}
	alerts := s.differ.EndSweep()

	s.lastSweep = recs
	s.alerts = append(s.alerts, alerts...)
	if n := len(s.alerts); n > maxServiceAlerts {
		s.alerts = append([]Alert(nil), s.alerts[n-maxServiceAlerts:]...)
	}
	s.metrics.Rounds++
	s.metrics.RulesSwept += uint64(len(recs))
	s.metrics.AlertsTotal += uint64(len(alerts))
	s.metrics.LastRoundRules = len(recs)
	s.metrics.LastRoundMicros = time.Since(start).Microseconds()
	if len(recs) > 0 {
		s.metrics.LastRoundMicrosPerRule = float64(s.metrics.LastRoundMicros) / float64(len(recs))
	} else {
		s.metrics.LastRoundMicrosPerRule = 0
	}
	return alerts
}

// Run drives steady-state sweep rounds every WithSteadyInterval until the
// context is cancelled, then drains gracefully: the in-flight round
// completes (rounds run under their own context, so cancellation never
// truncates one mid-sweep), the service is marked draining for /healthz,
// and the context's error is returned.
func (s *Service) Run(ctx context.Context) error {
	ticker := time.NewTicker(s.set.steadyInterval)
	defer ticker.Stop()
	s.SweepRound(context.Background())
	for {
		select {
		case <-ctx.Done():
			s.mu.Lock()
			s.draining = true
			s.mu.Unlock()
			return ctx.Err()
		case <-ticker.C:
			s.SweepRound(context.Background())
		}
	}
}

// Alerts returns a snapshot of the retained alert log (oldest first).
func (s *Service) Alerts() []Alert {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Alert(nil), s.alerts...)
}

// Metrics returns a snapshot of the service counters with per-switch
// epoch and cache detail attached.
func (s *Service) Metrics() ServiceMetrics {
	s.mu.Lock()
	m := s.metrics
	s.mu.Unlock()
	for _, id := range s.fleet.Switches() {
		v, ok := s.fleet.Verifier(id)
		if !ok {
			continue
		}
		m.Switches = append(m.Switches, SwitchMetrics{
			Switch: id,
			Epoch:  v.Epoch(),
			Rules:  v.Len(),
			Cache:  v.CacheStats(),
		})
	}
	return m
}

// Handler returns the monocled HTTP control surface:
//
//	POST /switches            add a switch (SwitchSpec)
//	GET  /switches            list switches with epochs and rule counts
//	POST /switches/{id}/rules apply a RuleOp, returns UpdateReply
//	POST /sweep               run one sweep round now, returns its alerts
//	GET  /sweeps              last round's ResultRecords, one JSON line each
//	GET  /alerts              retained alerts, one JSON line each
//	GET  /healthz             liveness and drain state
//	GET  /metrics             ServiceMetrics
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /switches", s.handleAddSwitch)
	mux.HandleFunc("GET /switches", s.handleListSwitches)
	mux.HandleFunc("POST /switches/{id}/rules", s.handleRules)
	mux.HandleFunc("POST /sweep", s.handleSweepNow)
	mux.HandleFunc("GET /sweeps", s.handleSweeps)
	mux.HandleFunc("GET /alerts", s.handleAlerts)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func (s *Service) handleAddSwitch(w http.ResponseWriter, r *http.Request) {
	var spec SwitchSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if _, err := s.AddSwitch(spec); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrDuplicateSwitch) {
			status = http.StatusConflict
		}
		httpError(w, status, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"switch": spec.ID})
}

func (s *Service) handleListSwitches(w http.ResponseWriter, _ *http.Request) {
	var out []SwitchMetrics
	for _, id := range s.fleet.Switches() {
		if v, ok := s.fleet.Verifier(id); ok {
			out = append(out, SwitchMetrics{Switch: id, Epoch: v.Epoch(), Rules: v.Len(), Cache: v.CacheStats()})
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Service) handleRules(w http.ResponseWriter, r *http.Request) {
	id64, err := strconv.ParseUint(r.PathValue("id"), 10, 32)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad switch id: %w", err))
		return
	}
	var op RuleOp
	if err := json.NewDecoder(r.Body).Decode(&op); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	reply, err := s.ApplyRule(uint32(id64), op)
	if err != nil {
		status := http.StatusBadRequest
		switch {
		case errors.Is(err, ErrNotFound):
			status = http.StatusNotFound
		case errors.Is(err, ErrDuplicateID), errors.Is(err, ErrSamePriorityOverlap):
			status = http.StatusConflict
		}
		httpError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, reply)
}

func (s *Service) handleSweepNow(w http.ResponseWriter, _ *http.Request) {
	// Deliberately not the request context: a client disconnect mid-sweep
	// would cancel the round and turn every unswept rule into a false
	// StatusError failing alert (Run's loop avoids this the same way).
	alerts := s.SweepRound(context.Background())
	s.mu.Lock()
	round := s.metrics.Rounds
	rules := s.metrics.LastRoundRules
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"round": round, "rules": rules, "alerts": alerts,
	})
}

func (s *Service) handleSweeps(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	recs := append([]ResultRecord(nil), s.lastSweep...)
	s.mu.Unlock()
	writeJSONLines(w, len(recs), func(enc *json.Encoder, i int) error {
		return enc.Encode(recs[i])
	})
}

func (s *Service) handleAlerts(w http.ResponseWriter, _ *http.Request) {
	alerts := s.Alerts()
	writeJSONLines(w, len(alerts), func(enc *json.Encoder, i int) error {
		return enc.Encode(alerts[i])
	})
}

func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	rounds := s.metrics.Rounds
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":       true,
		"draining": draining,
		"switches": s.fleet.Size(),
		"rounds":   rounds,
	})
}

func (s *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

// httpError writes a JSON error body.
func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// writeJSON writes one JSON document.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeJSONLines writes n JSON lines (ndjson).
func writeJSONLines(w http.ResponseWriter, n int, line func(*json.Encoder, int) error) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for i := 0; i < n; i++ {
		if err := line(enc, i); err != nil {
			return
		}
	}
}

// fieldIDs maps OpenFlow 1.0 field names to FieldIDs.
var fieldIDs = func() map[string]FieldID {
	m := make(map[string]FieldID, NumFields)
	for f := FieldID(0); f < NumFields; f++ {
		m[f.String()] = f
	}
	return m
}()

// rule builds the flow rule a RuleSpec describes.
func (rs *RuleSpec) rule() (*Rule, error) {
	m := MatchAll()
	for name, val := range rs.Match {
		f, ok := fieldIDs[name]
		if !ok {
			return nil, fmt.Errorf("monocle: unknown match field %q", name)
		}
		t, err := parseTernary(f, val)
		if err != nil {
			return nil, err
		}
		m = m.With(f, t)
	}
	actions, err := actionList(rs.Actions)
	if err != nil {
		return nil, err
	}
	r := &Rule{ID: rs.ID, Priority: rs.Priority, Match: m, Actions: actions}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return r, nil
}

// actionList builds a rule action list from specs.
func actionList(specs []ActionSpec) ([]Action, error) {
	var out []Action
	for _, a := range specs {
		switch {
		case a.Set != nil:
			f, ok := fieldIDs[a.Set.Field]
			if !ok {
				return nil, fmt.Errorf("monocle: unknown set field %q", a.Set.Field)
			}
			out = append(out, SetField(f, a.Set.Value))
		case len(a.ECMP) > 0:
			ports := make([]PortID, len(a.ECMP))
			for i, p := range a.ECMP {
				ports[i] = PortID(p)
			}
			out = append(out, ECMP(ports...))
		case a.Output != 0:
			out = append(out, Output(PortID(a.Output)))
		default:
			return nil, fmt.Errorf("monocle: action needs output, ecmp, or set")
		}
	}
	return out, nil
}

// cloneActions copies an action list so the expected and actual tables
// never share Action slices.
func cloneActions(actions []Action) []Action {
	out := make([]Action, len(actions))
	copy(out, actions)
	for i := range out {
		if len(out[i].Ports) > 0 {
			out[i].Ports = append([]PortID(nil), out[i].Ports...)
		}
	}
	return out
}

// parseTernary parses one match value: "5", "0x800", "10.0.0.0",
// "10.0.0.0/8", or "value/prefixlen".
func parseTernary(f FieldID, s string) (Ternary, error) {
	valPart, plenPart, hasPlen := strings.Cut(s, "/")
	v, err := parseFieldValue(valPart)
	if err != nil {
		return Ternary{}, fmt.Errorf("monocle: field %s: %w", f, err)
	}
	if !hasPlen {
		return Exact(f, v), nil
	}
	plen, err := strconv.Atoi(plenPart)
	if err != nil || plen < 0 || plen > FieldWidth(f) {
		return Ternary{}, fmt.Errorf("monocle: field %s: bad prefix length %q", f, plenPart)
	}
	return Prefix(f, v, plen), nil
}

// parseFieldValue parses a decimal/0x-hex integer or an IPv4 dotted quad.
func parseFieldValue(s string) (uint64, error) {
	if strings.Contains(s, ".") {
		parts := strings.Split(s, ".")
		if len(parts) != 4 {
			return 0, fmt.Errorf("bad dotted quad %q", s)
		}
		var v uint64
		for _, p := range parts {
			o, err := strconv.ParseUint(p, 10, 8)
			if err != nil {
				return 0, fmt.Errorf("bad dotted quad %q", s)
			}
			v = v<<8 | o
		}
		return v, nil
	}
	return strconv.ParseUint(s, 0, 64)
}
