package monocle_test

// ProxyBackend end-to-end tests over real TCP sockets: a switchsim-backed
// in-process OpenFlow 1.0 switch accepts the driver's connection and runs
// a genuine simulated data plane behind the wire codec. The tests drive
// the full service path the paper deploys — install a rule over HTTP,
// confirm it with a probe injected through the control channel, sweep,
// break the hardware behind the verifier's back, and watch the alert
// surface — plus the proxied-controller path cmd/monocle uses (FlowMods
// arriving from a real controller connection fill the Monitor's expected
// table, which the Fleet then sweeps through the driver). Run under -race
// in CI.

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"monocle"
)

// tcpSimSwitch is an in-process TCP OpenFlow switch backed by a
// switchsim.Switch: messages read from the connection drive the simulated
// control plane, replies and punted PacketIns flow back over the wire,
// and every frame the data plane emits on a physical port is reflected
// back as a PacketIn — the downstream probe catcher collapsed into the
// harness (the same role the scripted switch plays in the internal proxy
// tests).
type tcpSimSwitch struct {
	t        *testing.T
	ln       net.Listener
	done     chan struct{}
	fail     chan uint64 // rule ids to delete from the data plane only
	heal     chan uint64 // rule ids whose injected failure is lifted
	healDone chan struct{}
	addr     string
	ports    []monocle.PortID
	// deliver receives every frame the data plane emits on a physical
	// port; nil reflects it back as this switch's own PacketIn.
	deliver func(port monocle.PortID, f monocle.Frame)

	wmu  sync.Mutex
	conn net.Conn
}

func startTCPSimSwitch(t *testing.T, id uint32, ports []monocle.PortID) *tcpSimSwitch {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &tcpSimSwitch{
		t:        t,
		ln:       ln,
		done:     make(chan struct{}),
		fail:     make(chan uint64, 4),
		heal:     make(chan uint64),
		healDone: make(chan struct{}),
		addr:     ln.Addr().String(),
		ports:    ports,
	}
	go s.serve(id)
	return s
}

func (s *tcpSimSwitch) stop() {
	close(s.done)
	s.ln.Close()
}

// write sends one message up this switch's control channel; safe from
// any goroutine (cross-switch deliveries race the switch's own loop).
// A write error means the proxy side dropped: the connection is shed and
// the switch waits for a re-dial.
func (s *tcpSimSwitch) write(msg monocle.Message, xid uint32) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if s.conn == nil {
		return
	}
	if err := monocle.WriteMessage(s.conn, msg, xid); err != nil {
		s.conn.Close()
		s.conn = nil
	}
}

// healRule lifts an injected rule failure and returns once the switch's
// event loop has processed it, so a follow-up re-install cannot race the
// still-armed suppression.
func (s *tcpSimSwitch) healRule(id uint64) {
	s.heal <- id
	<-s.healDone
}

// drop forcibly closes the current proxy connection — a switch-side TCP
// drop mid-flight. The switch keeps its data plane and listener, so a
// reconnecting driver finds the same switch state on re-dial.
func (s *tcpSimSwitch) drop() {
	s.wmu.Lock()
	conn := s.conn
	s.conn = nil
	s.wmu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// catchFrame surfaces a caught data-plane frame as this switch's
// PacketIn — what its catching rule would do with a neighbour's probe.
func (s *tcpSimSwitch) catchFrame(port monocle.PortID, f monocle.Frame) {
	s.write(monocle.PacketIn{
		BufferID: monocle.BufferNone,
		InPort:   uint16(port),
		Reason:   monocle.ReasonAction,
		Data:     f,
	}, 0)
}

// serve runs the switch's event loop on a single goroutine: network
// messages are posted through a channel, the virtual clock is driven
// against wall time, and all switchsim state stays single-threaded. The
// listener keeps accepting — a proxy that drops its connection (or a
// restarted monocled re-dialing the same switch) gets the same simulated
// switch back, data-plane faults and all, exactly like real hardware
// surviving a monitor restart.
func (s *tcpSimSwitch) serve(id uint32) {
	clock := monocle.NewSim()
	sw := monocle.NewSimSwitch(id, clock, monocle.ProfileIdeal(), int64(id))
	sw.ToController = func(msg monocle.Message, xid uint32) { s.write(msg, xid) }
	// Collapse the downstream catchers: a frame emitted on any physical
	// port goes to the configured deliverer (a neighbour harness, for
	// cross-switch topologies) or straight back as this switch's own
	// PacketIn, as a catching rule would deliver it.
	for _, p := range s.ports {
		port := p
		monocle.ConnectHost(sw, port, 0, func(f monocle.Frame) {
			if s.deliver != nil {
				s.deliver(port, f)
				return
			}
			s.catchFrame(port, f)
		})
	}

	msgs := make(chan func(), 64)
	conns := make(chan net.Conn)
	go func() {
		for {
			conn, err := s.ln.Accept()
			if err != nil {
				close(conns)
				return
			}
			select {
			case conns <- conn:
			case <-s.done:
				conn.Close()
				return
			}
		}
	}()

	var cur net.Conn
	defer func() {
		if cur != nil {
			cur.Close()
		}
	}()
	start := time.Now()
	for {
		clock.RunUntil(monocle.Time(time.Since(start)))
		select {
		case <-s.done:
			return
		case conn, ok := <-conns:
			if !ok {
				return
			}
			if cur != nil {
				cur.Close()
			}
			cur = conn
			s.wmu.Lock()
			s.conn = conn
			s.wmu.Unlock()
			go s.readConn(conn, sw, msgs)
		case id := <-s.fail:
			// Behind-the-scenes hardware fault: the data plane loses the
			// rule, every control-plane view stays intact.
			sw.FailRule(id)
		case id := <-s.heal:
			// Lift the injected failure so a control-plane re-install can
			// land again (switchsim suppresses commits of failed ids).
			sw.HealRule(id)
			s.healDone <- struct{}{}
		case fn := <-msgs:
			clock.RunUntil(monocle.Time(time.Since(start)))
			fn()
		case <-time.After(time.Millisecond):
		}
	}
}

// readConn pumps one proxy connection's messages onto the event loop,
// returning (without tearing anything down) when the connection drops.
func (s *tcpSimSwitch) readConn(conn net.Conn, sw *monocle.SimSwitch, msgs chan func()) {
	for {
		msg, xid, err := monocle.ReadMessage(conn)
		if err != nil {
			return
		}
		select {
		case msgs <- func() { sw.FromController(msg, xid) }:
		case <-s.done:
			return
		}
	}
}

// TestProxyBackendServiceEndToEnd drives a live TCP switch through the
// whole monocled service: add the proxy-backed switch over HTTP, install
// a rule through the dynamic-update path (the confirmation probe crosses
// the real wire), sweep it healthy, delete it from the hardware behind
// the verifier's back, and require exactly the right failing alert.
func TestProxyBackendServiceEndToEnd(t *testing.T) {
	ports := []monocle.PortID{1, 2, 3, 4}
	sw := startTCPSimSwitch(t, 1, ports)
	defer sw.stop()

	svc := monocle.NewService(
		monocle.WithWorkers(1),
		monocle.WithDetectionTimeout(500*time.Millisecond),
	)
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	post := func(path string, body any, out any) (int, string) {
		t.Helper()
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		if out != nil && resp.StatusCode < 300 {
			if err := json.Unmarshal(buf.Bytes(), out); err != nil {
				t.Fatalf("POST %s: decoding %q: %v", path, buf.String(), err)
			}
		}
		return resp.StatusCode, buf.String()
	}

	// The proxy-backed switch: every port's catcher is the switch itself
	// (the harness reflects emitted frames back as PacketIns).
	spec := monocle.SwitchSpec{
		ID:      1,
		Backend: "proxy",
		Address: sw.addr,
		Ports:   []uint16{1, 2, 3, 4},
		Peers:   map[uint16]uint32{1: 1, 2: 1, 3: 1, 4: 1},
	}
	if status, body := post("/switches", spec, nil); status != http.StatusCreated {
		t.Fatalf("adding proxy switch: status %d body %s", status, body)
	}

	// Install a rule through the dynamic-update confirmation path: the
	// FlowMod and the probe both cross the TCP wire, and the verdict must
	// come back confirmed from the live data plane.
	rs := monocle.RuleSpec{ID: 7, Priority: 10,
		Match:   map[string]string{"dl_type": "0x800", "nw_dst": "10.0.1.0/24"},
		Actions: []monocle.ActionSpec{{Output: 2}}}
	var reply monocle.UpdateReply
	status, body := post("/switches/1/rules", monocle.RuleOp{Op: "add", Rule: &rs}, &reply)
	if status != http.StatusOK {
		t.Fatalf("add rule: status %d body %s", status, body)
	}
	if reply.Verdict != "confirmed" {
		t.Fatalf("add verdict = %q, want confirmed (reply %+v)", reply.Verdict, reply)
	}

	// A healthy sweep: the steady-state probe is injected over the wire,
	// caught, and judged confirmed — no alerts.
	var round struct {
		Rules  int             `json:"rules"`
		Alerts []monocle.Alert `json:"alerts"`
	}
	if status, body := post("/sweep", struct{}{}, &round); status != http.StatusOK {
		t.Fatalf("POST /sweep: %d %s", status, body)
	}
	if round.Rules != 1 || len(round.Alerts) != 0 {
		t.Fatalf("healthy sweep: %+v", round)
	}

	// A data-plane op naming a rule the expected table does not know
	// cannot be addressed safely on a live switch (the driver would have
	// to guess a match; a wildcard guess would wipe the table). It must
	// be rejected, and the installed rule must survive.
	if status, body := post("/switches/1/rules",
		monocle.RuleOp{Op: "delete", ID: 999, Dataplane: "actual"}, nil); status != http.StatusBadRequest {
		t.Fatalf("unresolved dataplane delete: status %d body %s, want 400", status, body)
	}
	if status, body := post("/sweep", struct{}{}, &round); status != http.StatusOK {
		t.Fatalf("POST /sweep: %d %s", status, body)
	}
	if round.Rules != 1 || len(round.Alerts) != 0 {
		t.Fatalf("sweep after rejected unresolved delete: %+v", round)
	}

	// The hardware loses the rule behind everyone's back (switchsim's
	// steady-state failure injection, §8.1.1). The next sweep's probe
	// falls through to the table miss, silence is judged, and exactly one
	// failing alert must surface.
	sw.fail <- 7
	deadline := time.Now().Add(30 * time.Second)
	var alerts []monocle.Alert
	for time.Now().Before(deadline) {
		if status, body := post("/sweep", struct{}{}, &round); status != http.StatusOK {
			t.Fatalf("POST /sweep: %d %s", status, body)
		}
		if len(round.Alerts) > 0 {
			alerts = round.Alerts
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(alerts) != 1 {
		t.Fatalf("want exactly one alert, got %+v", alerts)
	}
	if a := alerts[0]; a.Type != monocle.AlertRuleFailing || a.SwitchID != 1 || a.Rule != 7 {
		t.Fatalf("alert identifies the wrong divergence: %+v", a)
	}

	// Deleting the rule everywhere is an intentional change: the delete
	// probe confirms by absence and the rule leaves the diff engine with
	// a recovery-free silence (it is gone, not failing).
	status, body = post("/switches/1/rules", monocle.RuleOp{Op: "delete", ID: 7}, &reply)
	if status != http.StatusOK {
		t.Fatalf("delete rule: status %d body %s", status, body)
	}
	if reply.Verdict != "absent" {
		t.Fatalf("delete verdict = %q, want absent", reply.Verdict)
	}
}

// TestProxyBackendCrossSwitchRouting pins that a Service's proxy
// backends share one event loop and probe-routing Multiplexer: switch
// 1's probes exit toward switch 2 (its peer map says port 2 leads
// there), the frame is caught at switch 2's proxy as a PacketIn, and the
// Multiplexer must route it back to switch 1's Monitor — a confirmation
// that only works when both backends live in the same ProxyGroup.
func TestProxyBackendCrossSwitchRouting(t *testing.T) {
	ports := []monocle.PortID{1, 2}
	sw2 := startTCPSimSwitch(t, 2, ports)
	defer sw2.stop()
	sw1 := startTCPSimSwitch(t, 1, ports)
	defer sw1.stop()
	// Switch 1's emitted frames land at switch 2 (the wire between
	// them); switch 2's own emissions self-catch.
	sw1.deliver = func(port monocle.PortID, f monocle.Frame) { sw2.catchFrame(port, f) }

	svc := monocle.NewService(
		monocle.WithWorkers(1),
		monocle.WithDetectionTimeout(500*time.Millisecond),
	)
	defer svc.Close()

	for _, spec := range []monocle.SwitchSpec{
		{ID: 1, Backend: "proxy", Address: sw1.addr, Ports: []uint16{1, 2},
			Peers: map[uint16]uint32{1: 2, 2: 2}}, // catcher: switch 2
		{ID: 2, Backend: "proxy", Address: sw2.addr, Ports: []uint16{1, 2},
			Peers: map[uint16]uint32{1: 2, 2: 2}},
	} {
		if _, err := svc.AddSwitch(spec); err != nil {
			t.Fatal(err)
		}
	}

	// Installing on switch 1 only resolves if the probe caught at switch
	// 2's proxy routes back across the shared Multiplexer.
	reply, err := svc.ApplyRule(1, monocle.RuleOp{Op: "add", Rule: &monocle.RuleSpec{
		ID: 5, Priority: 10,
		Match:   map[string]string{"dl_type": "0x800", "nw_dst": "10.0.2.0/24"},
		Actions: []monocle.ActionSpec{{Output: 2}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if reply.Verdict != "confirmed" {
		t.Fatalf("cross-switch confirmation verdict = %q, want confirmed (probes are not routing between the proxies)", reply.Verdict)
	}
}

// TestProxyBackendControllerPath exercises the cmd/monocle deployment
// shape as a library user: a controller connects to the ProxyBackend's
// listen side and installs a rule with a FlowMod + barrier; the Monitor
// intercepts it, confirms it against the live data plane (gating the
// barrier), and the Fleet then sweeps the proxied expected table through
// the driver (AttachBackend) with verdicts observed over the wire.
func TestProxyBackendControllerPath(t *testing.T) {
	ports := []monocle.PortID{1, 2}
	sw := startTCPSimSwitch(t, 3, ports)
	defer sw.stop()

	be := monocle.NewProxyBackend(monocle.ProxyConfig{
		SwitchID:       3,
		SwitchAddr:     sw.addr,
		Listen:         "127.0.0.1:0",
		ObserveTimeout: 500 * time.Millisecond,
	},
		monocle.WithPorts(1, 2),
		monocle.WithPeers(map[monocle.PortID]uint32{1: 3, 2: 3}),
	)
	if err := be.Connect(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer be.Close()

	ctrlAddr := be.ControllerAddr()
	if ctrlAddr == "" {
		t.Fatal("no controller listen address")
	}
	ctrl, err := net.Dial("tcp", ctrlAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()

	// The controller installs one rule and fences it with a barrier; the
	// Monitor answers the barrier only once the rule is provably in the
	// data plane.
	m := monocle.MatchAll().
		WithExact(monocle.EthType, monocle.EthTypeIPv4).
		WithExact(monocle.IPSrc, 10<<24|42)
	wm, err := monocle.FromMatch(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := monocle.WriteMessage(ctrl, &monocle.FlowMod{
		Match: wm, Cookie: 42, Command: monocle.FCAdd, Priority: 10,
		BufferID: monocle.BufferNone, OutPort: monocle.PortNone,
		Actions: []monocle.WireAction{monocle.OutputAction(2)},
	}, 100); err != nil {
		t.Fatal(err)
	}
	if err := monocle.WriteMessage(ctrl, monocle.BarrierRequest{}, 101); err != nil {
		t.Fatal(err)
	}
	barrier := make(chan uint32, 1)
	go func() {
		for {
			msg, xid, err := monocle.ReadMessage(ctrl)
			if err != nil {
				return
			}
			switch msg.(type) {
			case monocle.BarrierReply, *monocle.BarrierReply:
				barrier <- xid
				return
			}
		}
	}()
	select {
	case xid := <-barrier:
		if xid != 101 {
			t.Fatalf("barrier reply xid = %d", xid)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("barrier never released: rule not confirmed in the data plane")
	}

	// The fleet sweeps the proxied expected table through the driver.
	fl := monocle.NewFleet(monocle.WithWorkers(2))
	if err := fl.AttachBackend(be); err != nil {
		t.Fatal(err)
	}
	if got, ok := fl.Backend(3); !ok || got != monocle.Backend(be) {
		t.Fatal("fleet does not expose the attached backend")
	}
	evs := fl.Sweep(context.Background())
	if len(evs) != 1 || evs[0].SwitchID != 3 || evs[0].Result.Rule.ID != 42 {
		t.Fatalf("sweep over the proxied table: %+v", evs)
	}
	if evs[0].Result.Err != nil || evs[0].Result.Probe == nil {
		t.Fatalf("sweep result: %+v", evs[0].Result)
	}
	v, err := be.Observe(context.Background(), evs[0].Result.Probe, monocle.ExpectPresent)
	if err != nil || v != monocle.VerdictConfirmed {
		t.Fatalf("observing the swept probe: %v, %v", v, err)
	}

	// Lifecycle events surfaced along the way.
	seen := map[monocle.BackendEventType]bool{}
	for {
		select {
		case ev := <-be.Events():
			seen[ev.Type] = true
			if ev.Type == monocle.BackendRuleConfirmed && ev.Rule != 42 {
				t.Fatalf("confirmed the wrong rule: %+v", ev)
			}
		default:
			if !seen[monocle.BackendConnected] || !seen[monocle.BackendControllerConnected] || !seen[monocle.BackendRuleConfirmed] {
				t.Fatalf("missing lifecycle events: %+v", seen)
			}
			return
		}
	}
}
