package monocle

// Crash-safe persistence for the monocled service. A Store is the seam
// the Service writes its cross-restart state through: switch
// registrations, expected-table snapshots (stamped with their
// table-change epoch), the diff engine's folded cross-epoch state, and
// every emitted alert. FileStore is the built-in implementation: one
// append-only JSON-line WAL per switch plus one service-level WAL,
// compacted in place once they accumulate enough superseded records. A
// restarted process calls Service.Resume to load the store and pick up
// diffing exactly where the previous process stopped — same epochs, same
// debounce/flap streaks, same outstanding alerts — so a restart raises
// neither a re-confirmation storm nor false rule_recovered alerts.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/bits"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"monocle/internal/flowtable"
	"monocle/internal/header"
)

// Store persists the service's cross-restart state. Implementations must
// be safe for concurrent use. Every Save call must be durable when it
// returns (the Service persists a round's alerts before delivering them
// to sinks, so a crash between the two re-delivers rather than loses).
type Store interface {
	// SaveSwitch persists one switch registration.
	SaveSwitch(spec SwitchSpec) error
	// SaveRules persists switch id's full expected rule set as of the
	// given table-change epoch (a snapshot, superseding earlier ones).
	SaveRules(id uint32, epoch uint64, rules []RuleSpec) error
	// SaveRound persists one completed sweep round: the diff engine's
	// folded state and the alerts the round raised.
	SaveRound(state DifferState, alerts []Alert) error
	// SavePolicy persists the active monitoring-policy source text
	// (empty clears it), superseding earlier saves.
	SavePolicy(src string) error
	// Load reads the last persisted state back (an empty, non-nil state
	// when the store is new).
	Load() (*FleetState, error)
	// Close flushes and releases the store.
	Close() error
}

// SwitchState is one switch's slice of a loaded FleetState.
type SwitchState struct {
	// Spec is the switch registration.
	Spec SwitchSpec `json:"spec"`
	// Epoch is the table-change epoch of the Rules snapshot.
	Epoch uint64 `json:"epoch,omitempty"`
	// Rules is the last persisted expected rule set.
	Rules []RuleSpec `json:"rules,omitempty"`
	// Diff is the switch's folded diff state; HasDiff marks it valid
	// (a switch may have been registered but never swept).
	Diff    SwitchDiffState `json:"diff,omitempty"`
	HasDiff bool            `json:"has_diff,omitempty"`
}

// FleetState is everything a Store gives back on Load.
type FleetState struct {
	// Rounds is the completed sweep-round count.
	Rounds uint64 `json:"rounds,omitempty"`
	// AlertSeq is the Differ's alert sequence counter as of the last
	// persisted round, so a Resume continues numbering where the previous
	// process stopped.
	AlertSeq uint64 `json:"alert_seq,omitempty"`
	// Switches holds the per-switch state, keyed by switch id.
	Switches map[uint32]SwitchState `json:"switches,omitempty"`
	// Alerts is the retained alert history, oldest first.
	Alerts []Alert `json:"alerts,omitempty"`
	// Policy is the last persisted monitoring-policy source text ("" when
	// none was ever saved or the last save cleared it).
	Policy string `json:"policy,omitempty"`
}

// walRecord is one WAL line. Kind selects which payload fields are set:
// "spec" (Spec), "rules" (Epoch, Rules), "diff" (Diff), "round" (Rounds),
// "alert" (Alert), "policy" (Policy). Seq is a store-global monotonic
// sequence number stamped on every appended record.
type walRecord struct {
	Kind     string           `json:"kind"`
	Seq      uint64           `json:"seq"`
	Spec     *SwitchSpec      `json:"spec,omitempty"`
	Epoch    uint64           `json:"epoch,omitempty"`
	Rules    []RuleSpec       `json:"rules,omitempty"`
	Diff     *SwitchDiffState `json:"diff,omitempty"`
	Rounds   uint64           `json:"rounds,omitempty"`
	AlertSeq uint64           `json:"alert_seq,omitempty"`
	Alert    *Alert           `json:"alert,omitempty"`
	Policy   string           `json:"policy,omitempty"`
}

const (
	// compactEvery bounds how many records a WAL accumulates beyond its
	// compacted form before it is rewritten in place.
	compactEvery = 256
	// alertKeep bounds how many alerts survive a service-WAL compaction
	// (matches the default RingSink capacity).
	alertKeep = 4096
)

// FileStore is the built-in Store: a state directory holding one
// append-only JSON-line WAL per switch (switch-<id>.wal) plus a
// service-level WAL (service.wal) for the round counter and the alert
// history. Appends are fsynced; compaction rewrites a WAL through a
// temporary file and an atomic rename, so a crash at any point leaves
// either the old or the new file, never a mix. A truncated final line
// (crash mid-append) is ignored on load.
type FileStore struct {
	dir string

	mu    sync.Mutex
	seq   uint64
	files map[string]*walFile
}

// walFile is one open WAL with its append count since the last compaction.
type walFile struct {
	f       *os.File
	appends int
}

// OpenFileStore opens (creating if needed) the state directory as a
// FileStore. Orphaned compaction temporaries (a crash between the tmp
// write and the atomic rename) are swept away: the un-renamed WAL is
// still the authoritative state, and the next compaction will rewrite it.
func OpenFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("monocle: state dir: %w", err)
	}
	if entries, err := os.ReadDir(dir); err == nil {
		for _, e := range entries {
			if strings.Contains(e.Name(), ".wal.tmp-") {
				os.Remove(filepath.Join(dir, e.Name()))
			}
		}
	}
	return &FileStore{dir: dir, files: make(map[string]*walFile)}, nil
}

// Dir returns the state directory.
func (fs *FileStore) Dir() string { return fs.dir }

func switchWALName(id uint32) string { return fmt.Sprintf("switch-%d.wal", id) }

const serviceWALName = "service.wal"

// SaveSwitch implements Store.
func (fs *FileStore) SaveSwitch(spec SwitchSpec) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	sp := spec
	return fs.appendLocked(switchWALName(spec.ID), walRecord{Kind: "spec", Spec: &sp})
}

// SaveRules implements Store.
func (fs *FileStore) SaveRules(id uint32, epoch uint64, rules []RuleSpec) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if rules == nil {
		rules = []RuleSpec{} // distinguish "empty table" from "no snapshot"
	}
	return fs.appendLocked(switchWALName(id), walRecord{Kind: "rules", Epoch: epoch, Rules: rules})
}

// SaveRound implements Store.
func (fs *FileStore) SaveRound(state DifferState, alerts []Alert) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var firstErr error
	ids := make([]uint32, 0, len(state.Switches))
	for id := range state.Switches {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		d := state.Switches[id]
		if err := fs.appendLocked(switchWALName(id), walRecord{Kind: "diff", Diff: &d}); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := fs.appendLocked(serviceWALName, walRecord{Kind: "round", Rounds: state.Rounds, AlertSeq: state.Seq}); err != nil && firstErr == nil {
		firstErr = err
	}
	for i := range alerts {
		if err := fs.appendLocked(serviceWALName, walRecord{Kind: "alert", Alert: &alerts[i]}); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// SavePolicy implements Store.
func (fs *FileStore) SavePolicy(src string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.appendLocked(serviceWALName, walRecord{Kind: "policy", Policy: src})
}

// appendLocked stamps, encodes, appends, and fsyncs one record, then
// compacts the file if it has accumulated enough superseded records.
func (fs *FileStore) appendLocked(name string, rec walRecord) error {
	wf := fs.files[name]
	if wf == nil {
		f, err := os.OpenFile(filepath.Join(fs.dir, name), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		wf = &walFile{f: f}
		fs.files[name] = wf
	}
	fs.seq++
	rec.Seq = fs.seq
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := wf.f.Write(append(line, '\n')); err != nil {
		return err
	}
	if err := wf.f.Sync(); err != nil {
		return err
	}
	wf.appends++
	if wf.appends >= compactEvery {
		if err := fs.compactLocked(name); err != nil {
			return err
		}
	}
	return nil
}

// compactLocked rewrites one WAL to its minimal equivalent state:
// a switch WAL keeps the latest spec, rules snapshot, and diff record; the
// service WAL keeps the latest round and policy records and the last
// alertKeep alerts.
func (fs *FileStore) compactLocked(name string) error {
	path := filepath.Join(fs.dir, name)
	recs, err := readWAL(path)
	if err != nil {
		return err
	}
	var keep []walRecord
	if name == serviceWALName {
		var round, policy *walRecord
		var alerts []walRecord
		for i := range recs {
			switch recs[i].Kind {
			case "round":
				round = &recs[i]
			case "policy":
				policy = &recs[i]
			case "alert":
				alerts = append(alerts, recs[i])
			}
		}
		if len(alerts) > alertKeep {
			alerts = alerts[len(alerts)-alertKeep:]
		}
		if round != nil {
			keep = append(keep, *round)
		}
		if policy != nil {
			keep = append(keep, *policy)
		}
		keep = append(keep, alerts...)
	} else {
		var spec, rules, diff *walRecord
		for i := range recs {
			switch recs[i].Kind {
			case "spec":
				spec = &recs[i]
			case "rules":
				rules = &recs[i]
			case "diff":
				diff = &recs[i]
			}
		}
		for _, r := range []*walRecord{spec, rules, diff} {
			if r != nil {
				keep = append(keep, *r)
			}
		}
	}

	tmp, err := os.CreateTemp(fs.dir, name+".tmp-")
	if err != nil {
		return err
	}
	tmpPath := tmp.Name()
	w := bufio.NewWriter(tmp)
	for _, r := range keep {
		line, err := json.Marshal(r)
		if err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return err
		}
		w.Write(line)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return err
	}
	if err := os.Rename(tmpPath, path); err != nil {
		os.Remove(tmpPath)
		return err
	}
	// Reopen the append handle on the renamed file.
	if wf := fs.files[name]; wf != nil {
		wf.f.Close()
		delete(fs.files, name)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	fs.files[name] = &walFile{f: f}
	return nil
}

// readWAL parses one WAL file, skipping a truncated or corrupt final line
// (the signature of a crash mid-append).
func readWAL(path string) ([]walRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	defer f.Close()
	var recs []walRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec walRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			// A torn tail from a crash mid-append: everything before it
			// already parsed, so stop here rather than fail the load.
			break
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return recs, nil // oversized torn tail: same treatment
	}
	return recs, nil
}

// Load implements Store.
func (fs *FileStore) Load() (*FleetState, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	state := &FleetState{Switches: make(map[uint32]SwitchState)}
	entries, err := os.ReadDir(fs.dir)
	if err != nil {
		return nil, err
	}
	var maxSeq uint64
	note := func(r walRecord) {
		if r.Seq > maxSeq {
			maxSeq = r.Seq
		}
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "switch-") || !strings.HasSuffix(name, ".wal") {
			continue
		}
		id64, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "switch-"), ".wal"), 10, 32)
		if err != nil {
			continue
		}
		recs, err := readWAL(filepath.Join(fs.dir, name))
		if err != nil {
			return nil, err
		}
		var st SwitchState
		var haveSpec, haveRules bool
		for _, r := range recs {
			note(r)
			switch r.Kind {
			case "spec":
				if r.Spec != nil {
					st.Spec = *r.Spec
					haveSpec = true
				}
			case "rules":
				st.Epoch = r.Epoch
				st.Rules = r.Rules
				haveRules = true
			case "diff":
				if r.Diff != nil {
					st.Diff = *r.Diff
					st.HasDiff = true
				}
			}
		}
		if haveSpec || haveRules || st.HasDiff {
			state.Switches[uint32(id64)] = st
		}
	}
	recs, err := readWAL(filepath.Join(fs.dir, serviceWALName))
	if err != nil {
		return nil, err
	}
	for _, r := range recs {
		note(r)
		switch r.Kind {
		case "round":
			state.Rounds = r.Rounds
			state.AlertSeq = r.AlertSeq
		case "policy":
			state.Policy = r.Policy
		case "alert":
			if r.Alert != nil {
				state.Alerts = append(state.Alerts, *r.Alert)
			}
		}
	}
	if len(state.Alerts) > alertKeep {
		state.Alerts = state.Alerts[len(state.Alerts)-alertKeep:]
	}
	if maxSeq > fs.seq {
		fs.seq = maxSeq
	}
	return state, nil
}

// Close implements Store.
func (fs *FileStore) Close() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var firstErr error
	for name, wf := range fs.files {
		if err := wf.f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		delete(fs.files, name)
	}
	return firstErr
}

// ruleSpecs converts installed rules back to their JSON wire form — the
// inverse of RuleSpec.rule() — so expected-table snapshots round-trip
// through the store bit-identically.
func ruleSpecs(rules []*Rule) []RuleSpec {
	out := make([]RuleSpec, 0, len(rules))
	for _, r := range rules {
		out = append(out, ruleSpec(r))
	}
	return out
}

// ruleSpec converts one rule to its JSON wire form.
func ruleSpec(r *Rule) RuleSpec {
	rs := RuleSpec{ID: r.ID, Priority: r.Priority}
	for f := FieldID(0); f < NumFields; f++ {
		t := r.Match[f]
		if t.Mask == 0 {
			continue // wildcard
		}
		if rs.Match == nil {
			rs.Match = make(map[string]string)
		}
		rs.Match[f.String()] = ternaryString(f, t)
	}
	for _, a := range r.Actions {
		rs.Actions = append(rs.Actions, actionSpec(a))
	}
	return rs
}

// ternaryString renders one match cell in the form parseTernary accepts:
// a bare value for exact matches, value/prefixlen for contiguous prefix
// masks, and value&mask for arbitrary ternary masks.
func ternaryString(f FieldID, t Ternary) string {
	full := header.WidthMask(f)
	if t.Mask == full {
		return strconv.FormatUint(t.Value, 10)
	}
	ones := bits.OnesCount64(t.Mask)
	if t.Mask == full&^(full>>uint(ones)) {
		return fmt.Sprintf("%d/%d", t.Value, ones)
	}
	return fmt.Sprintf("0x%x&0x%x", t.Value, t.Mask)
}

// actionSpec converts one action to its JSON wire form.
func actionSpec(a Action) ActionSpec {
	switch a.Kind {
	case flowtable.ActionOutput:
		return ActionSpec{Output: uint16(a.Port)}
	case flowtable.ActionGroupECMP:
		ports := make([]uint16, len(a.Ports))
		for i, p := range a.Ports {
			ports[i] = uint16(p)
		}
		return ActionSpec{ECMP: ports}
	default: // ActionSetField
		return ActionSpec{Set: &SetFieldSpec{Field: a.Field.String(), Value: a.Value}}
	}
}
