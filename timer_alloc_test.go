package monocle

// Allocation regression check for the proxy event loop's reused timer:
// re-arming between waits must not allocate (the time.After it replaced
// allocated a timer plus channel per message, i.e. per probe per sweep).

import (
	"testing"
	"time"
)

func TestResetTimerAllocs(t *testing.T) {
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	allocs := testing.AllocsPerRun(1000, func() {
		resetTimer(timer, time.Hour)
	})
	if allocs != 0 {
		t.Fatalf("resetTimer allocates %.1f allocs/op, want 0", allocs)
	}
}
