package monocle

// ProxyBackend: the live-switch driver. It is cmd/monocle's TCP proxy
// event loop lifted into the library — the proxy dials the switch, a
// controller can dial the proxy, reader goroutines post every OpenFlow
// message onto one event-loop thread, and the single-threaded Monitor
// state machine intercepts the session exactly as the paper deploys it
// (§7: one proxy per switch-controller connection). On top of the proxy
// loop it implements the Backend seam: Apply writes FlowMods to the
// switch, Observe injects probes through the control channel and judges
// the catches, and SweepExpected sweeps the Monitor's proxied table — so
// a Fleet or the monocled Service can front real OpenFlow 1.0 hardware
// through the same facade it uses for simulated data planes.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	imon "monocle/internal/monocle"
	"monocle/internal/netx"
)

// ProxyGroup shares one event-loop thread, one virtual clock, and one
// probe-routing Multiplexer among the ProxyBackends of a deployment.
// Backends in one group can catch each other's probes (cross-switch
// routing, which a process-per-switch deployment cannot do); every
// Monitor of the group runs on the group's single loop thread, satisfying
// the Multiplexer's contract. A nil ProxyConfig.Group gives each backend
// a private group.
type ProxyGroup struct {
	clock *Sim
	mux   *Multiplexer

	mu      sync.Mutex
	ch      chan func()
	started bool
	stopped bool
	refs    int
	done    chan struct{}
	start   time.Time
}

// NewProxyGroup returns an empty proxy group. Its event loop starts when
// the first member backend connects and stops when the last one closes.
func NewProxyGroup() *ProxyGroup {
	return &ProxyGroup{
		clock: NewSim(),
		mux:   NewMultiplexer(),
		ch:    make(chan func(), 1024),
		done:  make(chan struct{}),
	}
}

// Multiplexer returns the group's shared probe-routing multiplexer.
func (g *ProxyGroup) Multiplexer() *Multiplexer { return g.mux }

// Clock returns the group's virtual clock (driven against wall time by
// the group loop).
func (g *ProxyGroup) Clock() *Sim { return g.clock }

// retain counts one member in and (re)starts the loop if needed: a group
// whose loop stopped after its last member closed comes back for a newly
// connecting member.
func (g *ProxyGroup) retain() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.refs++
	if g.stopped {
		g.stopped = false
		g.started = false
		g.done = make(chan struct{})
	}
	if g.started {
		return
	}
	g.started = true
	g.start = time.Now()
	go g.run(g.done)
}

// release counts one member out; the last release stops the loop.
func (g *ProxyGroup) release() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.refs > 0 {
		g.refs--
	}
	if g.refs == 0 && g.started && !g.stopped {
		g.stopped = true
		close(g.done)
	}
}

// doneCh snapshots the current stop channel (replaced on restart).
func (g *ProxyGroup) doneCh() chan struct{} {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.done
}

// post queues fn onto the loop thread. Before the loop first starts
// (wiring, CatchRules at setup time) fn runs inline — setup is
// single-threaded by construction. While the loop is stopped, fn is
// dropped and post reports false.
func (g *ProxyGroup) post(fn func()) bool {
	g.mu.Lock()
	started, stopped, done := g.started, g.stopped, g.done
	g.mu.Unlock()
	if !started {
		if stopped {
			return false
		}
		fn()
		return true
	}
	select {
	case g.ch <- fn:
		return true
	case <-done:
		return false
	}
}

// call runs fn on the loop thread and waits for it to finish. If the
// loop stops while the call is queued (the last backend closing
// mid-operation), the stopping loop drains its queue, so the wait still
// resolves; a short grace period covers the enqueue/stop race.
func (g *ProxyGroup) call(fn func()) bool {
	doneCh := make(chan struct{})
	if !g.post(func() { fn(); close(doneCh) }) {
		return false
	}
	select {
	case <-doneCh:
		return true
	case <-g.doneCh():
		grace := time.NewTimer(time.Second)
		defer grace.Stop()
		select {
		case <-doneCh:
			return true
		case <-grace.C:
			return false
		}
	}
}

// resetTimer re-arms a loop-owned timer whose channel only this goroutine
// receives from: stop, drain a stale tick if one is pending, re-arm.
func resetTimer(t *time.Timer, d time.Duration) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	t.Reset(d)
}

// run drives the virtual clock against wall time: external events are
// posted through the channel, timers fire when their virtual due time
// passes. All Monitor state machines of the group stay single-threaded
// inside this loop.
func (g *ProxyGroup) run(done chan struct{}) {
	// One timer reused across iterations: time.After here would allocate
	// a timer per loop turn that lives until it fires — with a ~1ms floor
	// under load that is a steady allocation churn for the lifetime of
	// the deployment.
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		now := time.Since(g.start)
		g.clock.RunUntil(Time(now))
		var wait time.Duration = 50 * time.Millisecond
		if at, ok := g.clock.NextEventAt(); ok {
			if d := at - g.clock.Now(); d < wait {
				wait = time.Duration(d)
			}
		}
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		resetTimer(timer, wait)
		select {
		case <-done:
			// Drain queued work so no post-and-wait caller hangs on a
			// function that will never run.
			for {
				select {
				case fn := <-g.ch:
					fn()
				default:
					return
				}
			}
		case fn := <-g.ch:
			g.clock.RunUntil(Time(time.Since(g.start)))
			fn()
		case <-timer.C:
		}
	}
}

// ProxyConfig configures one ProxyBackend.
type ProxyConfig struct {
	// SwitchID is the monitored switch's Monocle identifier (and default
	// probe tag).
	SwitchID uint32
	// SwitchAddr is the TCP address of the OpenFlow 1.0 switch to dial.
	SwitchAddr string
	// Listen is the controller-side listen address. Empty disables the
	// controller side: the backend's owner is the only controller.
	Listen string
	// Steady starts the Monitor's steady-state probing cycle on connect.
	Steady bool
	// ObserveTimeout bounds one Observe round trip (default 2s).
	ObserveTimeout time.Duration
	// RetryInterval paces probe re-injection within Observe (default:
	// the Monitor's dynamic retry interval, 3ms).
	RetryInterval time.Duration
	// ObserveWindow caps the observations one ObserveBatch keeps in
	// flight at once (default 64): the batch pipelines that many round
	// trips instead of serializing inject→wait→inject.
	ObserveWindow int
	// ObserveRate paces batched observation starts in probes per second
	// through a token bucket on the group's clock (0: unpaced). It
	// bounds the PacketOut burst a sweep puts on the control channel so
	// probes do not crowd out FlowMods.
	ObserveRate float64
	// Group shares an event loop and probe-routing Multiplexer with
	// other backends (nil: a private group).
	Group *ProxyGroup
	// ReconnectMin is the first reconnect backoff delay after a
	// switch-side transport failure (default 100ms). Each failed redial
	// doubles the delay up to ReconnectMax, and every delay is jittered
	// over [d/2, d] so a fleet-wide outage does not thunder back in sync.
	ReconnectMin time.Duration
	// ReconnectMax caps the reconnect backoff delay (default 15s).
	ReconnectMax time.Duration
	// DisableReconnect turns automatic reconnection off: a switch-side
	// transport failure then permanently disconnects the backend (the
	// pre-reconnect behaviour; useful for tests and one-shot tools).
	DisableReconnect bool
}

// ProxyBackend fronts one live OpenFlow 1.0 switch over TCP. Construct it
// with NewProxyBackend, call Connect, and register it in a Fleet (or let
// the Service do all of this from a SwitchSpec with backend "proxy").
type ProxyBackend struct {
	cfg   ProxyConfig
	group *ProxyGroup
	mon   *Monitor
	ev    *eventRing

	// connectMu serializes Connect calls (check-then-dial must be
	// atomic with respect to concurrent Connects).
	connectMu sync.Mutex

	// closedCh is closed by Close: it aborts reconnect backoff sleeps
	// and resolves in-flight Observe waits.
	closedCh chan struct{}

	mu        sync.Mutex
	started   bool // Connect completed once; reconnects reuse its wiring
	swConn    net.Conn
	ctrlLn    net.Listener
	ctrlConn  net.Conn
	connected bool
	// connGen numbers switch-side transports; readers and writers of a
	// replaced transport carry a stale generation and cannot tear down
	// its successor.
	connGen uint64
	// connLost is closed when the current transport fails (replaced on
	// reconnect); in-flight Observe calls select on it so a drop
	// resolves them as unobserved instead of letting them hang out the
	// full observation timeout.
	connLost     chan struct{}
	reconnecting bool
	retained     bool // holds one reference on the group's loop
	closed       bool
	epoch        uint64
	nextXID      uint32
}

// NewProxyBackend builds the TCP proxy driver for cfg. The options
// parameterize the embedded Monitor exactly like NewMonitorConfig:
// WithProbeTag/WithProbeField set the probe tagging, WithPeers the
// port-to-catcher map, WithPorts the in_port domain, WithProbeRate the
// steady-state rate, WithDetectionTimeout the monitoring deadlines.
func NewProxyBackend(cfg ProxyConfig, opts ...Option) *ProxyBackend {
	if cfg.ObserveTimeout <= 0 {
		cfg.ObserveTimeout = 2 * time.Second
	}
	if cfg.ReconnectMin <= 0 {
		cfg.ReconnectMin = 100 * time.Millisecond
	}
	if cfg.ReconnectMax <= 0 {
		cfg.ReconnectMax = 15 * time.Second
	}
	if cfg.ReconnectMax < cfg.ReconnectMin {
		cfg.ReconnectMax = cfg.ReconnectMin
	}
	group := cfg.Group
	if group == nil {
		group = NewProxyGroup()
	}
	pb := &ProxyBackend{
		cfg:      cfg,
		group:    group,
		ev:       newEventRing(),
		closedCh: make(chan struct{}),
		connLost: make(chan struct{}),
	}
	mcfg := NewMonitorConfig(cfg.SwitchID, opts...)
	mcfg.OnAlarm = func(ruleID uint64, at Time) {
		pb.ev.emit(BackendEvent{Type: BackendAlarm, SwitchID: cfg.SwitchID, Rule: ruleID,
			Detail: fmt.Sprintf("rule %d misbehaving in the data plane (t=%v)", ruleID, at)})
	}
	mcfg.OnRuleConfirmed = func(ruleID uint64, at Time) {
		pb.ev.emit(BackendEvent{Type: BackendRuleConfirmed, SwitchID: cfg.SwitchID, Rule: ruleID,
			Detail: fmt.Sprintf("rule %d confirmed in the data plane (t=%v)", ruleID, at)})
	}
	pb.mon = imon.New(group.clock, mcfg)
	// Register before any loop delivery can happen (the Multiplexer's
	// register-before-start contract).
	pb.mon.Mux = group.mux
	group.mux.Register(pb.mon)
	return pb
}

// SwitchID implements Backend.
func (pb *ProxyBackend) SwitchID() uint32 { return pb.cfg.SwitchID }

// Monitor returns the embedded proxy Monitor. Touch its state only from
// the group's event-loop thread.
func (pb *ProxyBackend) Monitor() *Monitor { return pb.mon }

// SetObserveTimeout replaces the per-Observe round-trip bound at runtime
// (non-positive values are ignored). The Service calls it when a
// monitoring policy attaches a "confirm within" deadline to this switch;
// in-flight observations keep the timeout they started with.
func (pb *ProxyBackend) SetObserveTimeout(d time.Duration) {
	if d <= 0 {
		return
	}
	pb.mu.Lock()
	pb.cfg.ObserveTimeout = d
	pb.mu.Unlock()
}

// ControllerAddr returns the resolved controller-side listen address
// ("" before Connect or without a Listen configuration) — the address an
// SDN controller dials to reach the monitored switch through this proxy.
func (pb *ProxyBackend) ControllerAddr() string {
	pb.mu.Lock()
	defer pb.mu.Unlock()
	if pb.ctrlLn == nil {
		return ""
	}
	return pb.ctrlLn.Addr().String()
}

// Connect implements Backend: it dials the switch, starts the group's
// event loop and the reader goroutines, and (with a Listen address)
// starts accepting the controller side.
func (pb *ProxyBackend) Connect(ctx context.Context) error {
	pb.connectMu.Lock()
	defer pb.connectMu.Unlock()
	pb.mu.Lock()
	if pb.closed {
		pb.mu.Unlock()
		return ErrBackendClosed
	}
	if pb.started {
		pb.mu.Unlock()
		return nil
	}
	pb.mu.Unlock()

	swConn, err := netx.Dial(ctx, "tcp", pb.cfg.SwitchAddr)
	if err != nil {
		return fmt.Errorf("monocle: proxy backend S%d: dialing switch: %w", pb.cfg.SwitchID, err)
	}
	var ctrlLn net.Listener
	if pb.cfg.Listen != "" {
		ctrlLn, err = net.Listen("tcp", pb.cfg.Listen)
		if err != nil {
			swConn.Close()
			return fmt.Errorf("monocle: proxy backend S%d: listen: %w", pb.cfg.SwitchID, err)
		}
	}

	pb.mu.Lock()
	if pb.closed {
		pb.mu.Unlock()
		swConn.Close()
		if ctrlLn != nil {
			ctrlLn.Close()
		}
		return ErrBackendClosed
	}
	pb.started = true
	pb.swConn = swConn
	pb.ctrlLn = ctrlLn
	pb.connected = true
	pb.connGen = 1
	gen := pb.connGen
	pb.retained = true
	pb.mu.Unlock()

	pb.group.retain()
	pb.group.call(func() {
		pb.mon.ToSwitch = pb.writeSwitch
		pb.mon.ToController = pb.writeController
		if pb.cfg.Steady {
			pb.mon.StartSteadyState()
		}
	})

	go pb.readSwitch(swConn, gen)
	if ctrlLn != nil {
		go pb.acceptControllers(ctrlLn)
	}
	pb.ev.emit(BackendEvent{Type: BackendConnected, SwitchID: pb.cfg.SwitchID,
		Detail: fmt.Sprintf("connected to switch %s", pb.cfg.SwitchAddr)})
	return nil
}

// writeSwitch is the Monitor's switch-side sink. While the transport is
// down the write is dropped — the Monitor's own timers re-drive probing
// and detection once the transport comes back — and a write error tears
// down only the transport generation it happened on.
func (pb *ProxyBackend) writeSwitch(msg Message, xid uint32) {
	pb.mu.Lock()
	conn, gen, up := pb.swConn, pb.connGen, pb.connected && !pb.closed
	pb.mu.Unlock()
	if !up || conn == nil {
		return
	}
	if err := WriteMessage(conn, msg, xid); err != nil {
		pb.transportFailed(gen, fmt.Errorf("write to switch: %w", err))
	}
}

// writeController is the Monitor's controller-side sink. A controller
// that fails mid-write is dropped and replaced by the next one to attach;
// a controller-side failure never tears down the switch side.
func (pb *ProxyBackend) writeController(msg Message, xid uint32) {
	pb.mu.Lock()
	conn := pb.ctrlConn
	pb.mu.Unlock()
	if conn == nil {
		return // no controller attached: drop the pass-through
	}
	if err := WriteMessage(conn, msg, xid); err != nil {
		pb.mu.Lock()
		if pb.ctrlConn == conn {
			pb.ctrlConn = nil
		}
		pb.mu.Unlock()
		conn.Close()
	}
}

// readSwitch pumps switch→proxy messages onto the event loop. gen tags
// the transport this reader serves: after a reconnect the stale reader's
// failure report cannot tear down the replacement transport.
func (pb *ProxyBackend) readSwitch(conn net.Conn, gen uint64) {
	for {
		msg, xid, err := ReadMessage(conn)
		if err != nil {
			pb.transportFailed(gen, fmt.Errorf("switch read: %w", err))
			return
		}
		if !pb.group.post(func() { pb.mon.OnSwitchMessage(msg, xid) }) {
			return
		}
	}
}

// acceptControllers serves the controller-side listener: each accepted
// connection becomes the current controller (replacing any previous one)
// and its messages are pumped onto the event loop.
func (pb *ProxyBackend) acceptControllers(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		pb.mu.Lock()
		if pb.closed {
			pb.mu.Unlock()
			conn.Close()
			return
		}
		if prev := pb.ctrlConn; prev != nil {
			prev.Close()
		}
		pb.ctrlConn = conn
		pb.mu.Unlock()
		pb.ev.emit(BackendEvent{Type: BackendControllerConnected, SwitchID: pb.cfg.SwitchID,
			Detail: fmt.Sprintf("controller connected from %s", conn.RemoteAddr())})
		go pb.readController(conn)
	}
}

// readController pumps controller→proxy messages onto the event loop.
func (pb *ProxyBackend) readController(conn net.Conn) {
	for {
		msg, xid, err := ReadMessage(conn)
		if err != nil {
			pb.mu.Lock()
			if pb.ctrlConn == conn {
				pb.ctrlConn = nil
			}
			pb.mu.Unlock()
			return // controller went away; the switch side stays up
		}
		if !pb.group.post(func() { pb.mon.OnControllerMessage(msg, xid) }) {
			return
		}
	}
}

// transportFailed records a broken switch-side transport once per
// generation and, unless reconnect is disabled, starts the backoff redial
// loop. Reports from a generation already replaced by a reconnect are
// stale and ignored.
func (pb *ProxyBackend) transportFailed(gen uint64, err error) {
	pb.mu.Lock()
	if pb.closed || gen != pb.connGen || !pb.connected {
		pb.mu.Unlock()
		return
	}
	pb.connected = false
	close(pb.connLost)
	conn := pb.swConn
	pb.swConn = nil
	startLoop := !pb.cfg.DisableReconnect && !pb.reconnecting
	if startLoop {
		pb.reconnecting = true
	}
	pb.mu.Unlock()

	if conn != nil {
		conn.Close()
	}
	pb.ev.emit(BackendEvent{Type: BackendDisconnected, SwitchID: pb.cfg.SwitchID, Err: err,
		Detail: err.Error()})
	if startLoop {
		go pb.reconnectLoop()
	}
}

// reconnectLoop redials the switch with jittered exponential backoff
// until it succeeds or the backend closes. On success it installs the new
// transport under the next generation, restarts the reader, and emits
// BackendReconnected; the Monitor's state machine is untouched — its
// expected table and epoch survive the outage, so the member re-enters
// the sweep pool exactly where it left off.
func (pb *ProxyBackend) reconnectLoop() {
	// Deterministic per-switch jitter source: spreads a fleet-wide outage
	// without global rand contention.
	rng := rand.New(rand.NewSource(int64(pb.cfg.SwitchID)*2654435761 + 1))
	delay := pb.cfg.ReconnectMin
	timer := time.NewTimer(jitterDelay(rng, delay))
	defer timer.Stop()
	for attempt := 1; ; attempt++ {
		select {
		case <-pb.closedCh:
			return
		case <-timer.C:
		}
		dialTimeout := pb.cfg.ReconnectMax
		if dialTimeout < time.Second {
			dialTimeout = time.Second
		}
		dialCtx, cancel := context.WithTimeout(context.Background(), dialTimeout)
		conn, err := netx.Dial(dialCtx, "tcp", pb.cfg.SwitchAddr)
		cancel()
		if err != nil {
			delay *= 2
			if delay > pb.cfg.ReconnectMax {
				delay = pb.cfg.ReconnectMax
			}
			resetTimer(timer, jitterDelay(rng, delay))
			continue
		}
		pb.mu.Lock()
		if pb.closed {
			pb.mu.Unlock()
			conn.Close()
			return
		}
		pb.connGen++
		gen := pb.connGen
		pb.swConn = conn
		pb.connected = true
		pb.connLost = make(chan struct{})
		pb.reconnecting = false
		pb.mu.Unlock()

		go pb.readSwitch(conn, gen)
		pb.ev.emit(BackendEvent{Type: BackendReconnected, SwitchID: pb.cfg.SwitchID,
			Detail: fmt.Sprintf("reconnected to switch %s after %d attempt(s)", pb.cfg.SwitchAddr, attempt)})
		return
	}
}

// jitterDelay spreads one backoff delay over [d/2, d].
func jitterDelay(rng *rand.Rand, d time.Duration) time.Duration {
	if d <= time.Millisecond {
		return d
	}
	half := int64(d / 2)
	return time.Duration(half + rng.Int63n(half+1))
}

// Close implements Backend.
func (pb *ProxyBackend) Close() error {
	pb.mu.Lock()
	if pb.closed {
		pb.mu.Unlock()
		return nil
	}
	pb.closed = true
	pb.connected = false
	retained := pb.retained
	pb.retained = false
	swConn, ctrlLn, ctrlConn := pb.swConn, pb.ctrlLn, pb.ctrlConn
	pb.swConn, pb.ctrlLn, pb.ctrlConn = nil, nil, nil
	close(pb.closedCh) // aborts reconnect backoff and in-flight Observes
	pb.mu.Unlock()

	if swConn != nil {
		swConn.Close()
	}
	if ctrlLn != nil {
		ctrlLn.Close()
	}
	if ctrlConn != nil {
		ctrlConn.Close()
	}
	pb.ev.emit(BackendEvent{Type: BackendClosed, SwitchID: pb.cfg.SwitchID})
	pb.ev.close()
	if retained {
		pb.group.release()
	}
	return nil
}

// Apply implements Backend: the operation becomes an OpenFlow 1.0 FlowMod
// written to the switch, bypassing the Monitor's expected table — the
// caller (Service, tests) owns the expected-state bookkeeping, and a
// mutation applied here without a matching expected-side update is
// exactly a hardware-diverged-behind-the-controller's-back fault.
func (pb *ProxyBackend) Apply(op BackendOp) error {
	// Wire operations are built from the rule's match and priority, and
	// modify/delete go out strict (exact match + priority) so they can
	// only address the one rule they name. An unresolved pre-image would
	// force a guessed match — on a live switch a wildcard guess could
	// modify or delete every flow — so it is rejected instead.
	if op.Rule == nil {
		if op.Op == "add" {
			return fmt.Errorf("monocle: backend op %q needs a rule", op.Op)
		}
		return fmt.Errorf("monocle: %s of rule %d: pre-image not resolved (rule unknown to the expected table); a live driver cannot address it safely", op.Op, op.ID)
	}
	var cmd uint16
	actions := op.Rule.Actions
	switch op.Op {
	case "add":
		cmd = FCAdd
	case "modify":
		cmd = FCModifyStrict
		actions = op.Actions
	case "delete":
		cmd = FCDeleteStrict
		actions = nil
	default:
		return fmt.Errorf("monocle: unknown backend op %q", op.Op)
	}
	wm, err := FromMatch(op.Rule.Match)
	if err != nil {
		return err
	}
	wireActs, err := FromActions(actions)
	if err != nil {
		return err
	}
	fm := &FlowMod{
		Match:    wm,
		Cookie:   op.Rule.ID,
		Command:  cmd,
		Priority: uint16(op.Rule.Priority),
		BufferID: BufferNone,
		OutPort:  PortNone,
		Actions:  wireActs,
	}

	pb.mu.Lock()
	if pb.closed {
		pb.mu.Unlock()
		return ErrBackendClosed
	}
	if !pb.connected {
		pb.mu.Unlock()
		return ErrBackendDisconnected
	}
	pb.nextXID++
	xid := 0x4e000000 | pb.nextXID&0xffffff
	pb.epoch++
	pb.mu.Unlock()

	// Write on the loop thread (one writer per conn), but directly rather
	// than through the Monitor's ToSwitch sink: the sink silently drops
	// writes while disconnected, and Apply must report that, not pretend
	// the FlowMod reached the switch.
	var writeErr error
	ok := pb.group.call(func() {
		pb.mu.Lock()
		conn, gen, up := pb.swConn, pb.connGen, pb.connected && !pb.closed
		pb.mu.Unlock()
		if !up || conn == nil {
			writeErr = ErrBackendDisconnected
			return
		}
		if err := WriteMessage(conn, fm, xid); err != nil {
			pb.transportFailed(gen, fmt.Errorf("write to switch: %w", err))
			writeErr = fmt.Errorf("monocle: proxy backend S%d: %w", pb.cfg.SwitchID, err)
		}
	})
	if !ok {
		return ErrBackendClosed
	}
	return writeErr
}

// Observe implements Backend: the probe is injected through the switch's
// control channel (PacketOut to OFPP_TABLE) and re-injected on the retry
// interval until a catch settles the expectation or ObserveTimeout
// elapses; with no catch at all, silence itself is judged (a probe whose
// expected outcome is uncatchable confirms by silence).
func (pb *ProxyBackend) Observe(ctx context.Context, p *Probe, expect Expectation) (Verdict, error) {
	pb.mu.Lock()
	if pb.closed {
		pb.mu.Unlock()
		return VerdictUnexpected, ErrBackendClosed
	}
	if !pb.connected {
		pb.mu.Unlock()
		return VerdictUnexpected, ErrBackendDisconnected
	}
	connLost := pb.connLost
	timeout := pb.cfg.ObserveTimeout
	pb.mu.Unlock()

	ch := make(chan Verdict, 1)
	ok := pb.group.post(func() {
		pb.mon.ObserveProbe(p, expect, pb.cfg.RetryInterval, timeout, func(v Verdict) {
			ch <- v
		})
	})
	if !ok {
		return VerdictUnexpected, ErrBackendClosed
	}
	select {
	case v := <-ch:
		return v, nil
	case <-ctx.Done():
		return VerdictUnexpected, ctx.Err()
	case <-connLost:
		// The transport dropped under this observation: resolve it as
		// unobserved now instead of letting it hang out the observation
		// timeout against a dead switch. (The Monitor's own deadline
		// still cleans up the in-flight probe state.) A verdict that
		// raced the drop still counts.
		select {
		case v := <-ch:
			return v, nil
		default:
			return VerdictUnexpected, ErrBackendDisconnected
		}
	case <-pb.closedCh:
		select {
		case v := <-ch:
			return v, nil
		default:
			return VerdictUnexpected, ErrBackendClosed
		}
	case <-pb.group.doneCh():
		// The group's loop stopped under us (last backend closed). A
		// verdict that raced the stop still counts.
		select {
		case v := <-ch:
			return v, nil
		default:
			return VerdictUnexpected, ErrBackendClosed
		}
	}
}

// errBatchPending marks a batch slot whose observation has not resolved
// yet; abort paths replace it with the real cause, completion clears it.
var errBatchPending = errors.New("monocle: batch observation pending")

// batchWait collects one ObserveBatch's results across the event-loop /
// caller boundary: the loop thread resolves slots as verdicts arrive,
// the caller waits for completion or an abort. After abort, late
// verdicts are dropped (the caller owns the slices by then).
type batchWait struct {
	mu       sync.Mutex
	verdicts []Verdict
	errs     []error
	left     int
	aborted  bool
	done     chan struct{}
}

func newBatchWait(n int) *batchWait {
	w := &batchWait{
		verdicts: make([]Verdict, n),
		errs:     make([]error, n),
		left:     n,
		done:     make(chan struct{}),
	}
	for i := range w.errs {
		w.errs[i] = errBatchPending
	}
	return w
}

// resolve records one verdict; the last one completes the wait.
func (w *batchWait) resolve(i int, v Verdict) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.aborted || w.errs[i] != errBatchPending {
		return
	}
	w.verdicts[i], w.errs[i] = v, nil
	w.left--
	if w.left == 0 {
		close(w.done)
	}
}

// abort fails every unresolved slot with cause. Verdicts that raced the
// abort still count — only pending slots turn into errors, mirroring the
// one-shot Observe's drop semantics.
func (w *batchWait) abort(cause error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.aborted {
		return
	}
	w.aborted = true
	for i, err := range w.errs {
		if err == errBatchPending {
			w.verdicts[i], w.errs[i] = VerdictUnexpected, cause
		}
	}
}

// ObserveBatch implements BatchObserver: the whole batch marshals onto
// the event loop with a single post, where the Monitor pipelines up to
// ObserveWindow observations at once under ObserveRate's token bucket —
// one call, N judged probes, no per-probe post/channel/select round
// trips. Failure semantics are positional and identical to N Observe
// calls: a transport drop or close mid-batch fails the still-unresolved
// probes with the same sentinel errors Observe returns, while verdicts
// that already settled keep their values.
func (pb *ProxyBackend) ObserveBatch(ctx context.Context, probes []*Probe, expects []Expectation) ([]Verdict, []error) {
	n := len(probes)
	w := newBatchWait(n)
	failAll := func(err error) ([]Verdict, []error) {
		w.abort(err)
		return w.verdicts, w.errs
	}
	if n == 0 {
		return w.verdicts, w.errs
	}

	pb.mu.Lock()
	if pb.closed {
		pb.mu.Unlock()
		return failAll(ErrBackendClosed)
	}
	if !pb.connected {
		pb.mu.Unlock()
		return failAll(ErrBackendDisconnected)
	}
	connLost := pb.connLost
	timeout := pb.cfg.ObserveTimeout
	pb.mu.Unlock()

	pacing := imon.BatchPacing{Window: pb.cfg.ObserveWindow, Rate: pb.cfg.ObserveRate}
	// The Monitor retains the batch past an abort (its timers keep
	// driving the in-flight observations to their own deadlines), so it
	// gets private copies: the caller may reuse its slices the moment
	// ObserveBatch returns.
	ps := append([]*Probe(nil), probes...)
	exps := append([]Expectation(nil), expects...)
	ok := pb.group.post(func() {
		pb.mon.ObserveProbeBatch(ps, exps, pb.cfg.RetryInterval, timeout, pacing, w.resolve)
	})
	if !ok {
		return failAll(ErrBackendClosed)
	}
	select {
	case <-w.done:
	case <-ctx.Done():
		w.abort(ctx.Err())
	case <-connLost:
		// The transport dropped under the batch: resolve the pending
		// observations as unobserved now instead of letting them hang
		// out the observation timeout against a dead switch. (The
		// Monitor's own deadlines still clean up the in-flight state.)
		w.abort(ErrBackendDisconnected)
	case <-pb.closedCh:
		w.abort(ErrBackendClosed)
	case <-pb.group.doneCh():
		w.abort(ErrBackendClosed)
	}
	return w.verdicts, w.errs
}

// SweepExpected implements Sweeper: it sweeps the Monitor's proxied
// expected table on the event-loop thread (any goroutine may call this;
// the marshalling satisfies the Monitor's single-threaded contract). The
// loop is busy for the duration of the sweep.
func (pb *ProxyBackend) SweepExpected(ctx context.Context, workers int) (uint64, []ProbeResult) {
	var (
		epoch   uint64
		results []ProbeResult
	)
	pb.group.call(func() {
		epoch = pb.mon.Epoch()
		results = pb.mon.SweepExpected(ctx, workers)
	})
	return epoch, results
}

// Epoch implements Backend: the driver's count of Apply operations.
func (pb *ProxyBackend) Epoch() uint64 {
	pb.mu.Lock()
	defer pb.mu.Unlock()
	return pb.epoch
}

// Events implements Backend.
func (pb *ProxyBackend) Events() <-chan BackendEvent { return pb.ev.ch }

// EventDrops implements EventDropCounter.
func (pb *ProxyBackend) EventDrops() uint64 { return pb.ev.drops() }

// CatchRules returns the catching rules this switch must carry for its
// neighbours' probes (strategy 1, §6), given the deployment's reserved
// tag values.
func (pb *ProxyBackend) CatchRules(reserved []uint32) []*Rule {
	var out []*Rule
	pb.group.call(func() { out = pb.mon.CatchRules(reserved) })
	return out
}

// String identifies the driver in logs.
func (pb *ProxyBackend) String() string {
	return fmt.Sprintf("proxy-backend(S%d→%s)", pb.cfg.SwitchID, pb.cfg.SwitchAddr)
}
