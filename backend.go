package monocle

// The switch-backend driver seam. A Backend is how the verification stack
// (Verifier, Fleet, Service) reaches one switch's data plane: connect and
// close the driver's transport, apply rule operations to the hardware
// side, inject generated probes and observe what the data plane did to
// them, and watch the driver's lifecycle events. Everything above this
// seam is backend-agnostic — the same Service fronts a simulated data
// plane (SimBackend) or a live TCP OpenFlow 1.0 switch (ProxyBackend),
// and every future driver (record/replay, multi-controller) plugs in
// behind the same interface.

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// ErrBackendClosed reports an operation on a Backend after Close.
var ErrBackendClosed = errors.New("monocle: backend closed")

// ErrBackendDisconnected reports an operation on a live Backend whose
// transport is currently down. Unlike ErrBackendClosed this is a
// transient state: drivers with reconnect enabled keep retrying with
// backoff, and the operation can be retried once a BackendReconnected
// event fires.
var ErrBackendDisconnected = errors.New("monocle: backend disconnected")

// Backend drives one switch's data plane on behalf of the verification
// stack. Implementations must be safe for concurrent use.
type Backend interface {
	// SwitchID identifies the switch this backend drives.
	SwitchID() uint32
	// Connect establishes the driver's transport (a no-op for simulated
	// drivers). It must be called before Apply/Observe.
	Connect(ctx context.Context) error
	// Close releases the transport and ends the Events stream. Close is
	// idempotent.
	Close() error
	// Apply applies one resolved rule operation to the switch's data
	// plane — the hardware side of an update. It does not touch any
	// expected table; the caller owns that bookkeeping.
	Apply(op BackendOp) error
	// Observe injects probe p into the data plane and judges the
	// response against the probe's two hypotheses: VerdictConfirmed for
	// the rule-present outcome, VerdictAbsent for rule-absent,
	// VerdictUnexpected for neither. Live drivers re-inject until a catch
	// settles the expectation or their observation timeout elapses.
	Observe(ctx context.Context, p *Probe, expect Expectation) (Verdict, error)
	// Epoch reports the driver's view of the switch's data-plane change
	// epoch (bumped on every Apply).
	Epoch() uint64
	// Events returns the driver's lifecycle event stream. The channel is
	// buffered and never blocks the driver: events overflowing the
	// buffer are dropped. It is closed by Close.
	Events() <-chan BackendEvent
}

// BatchObserver is the optional Backend extension for drivers with a
// batched observe fast path: N probes judged per call, with one marshal
// loop and (for live drivers) one event-loop post instead of one per
// probe, plus an in-flight window so a 10k-probe sweep pipelines round
// trips instead of serializing them. Every built-in driver implements
// it; ObserveBatch (the package function) is the uniform entry point
// that falls back to sequential Observe calls for drivers that do not.
type BatchObserver interface {
	// ObserveBatch judges probes[i] against expects[i] exactly like N
	// Observe calls, returning the verdicts and the per-probe errors
	// (errs[i] nil on success) positionally. len(expects) must equal
	// len(probes). The returned slices are owned by the caller, and the
	// input slices revert to the caller when the call returns — an
	// implementation that keeps working past a partial failure (a live
	// driver's in-flight probes draining after a context abort) must
	// copy them.
	ObserveBatch(ctx context.Context, probes []*Probe, expects []Expectation) ([]Verdict, []error)
}

// ObserveBatch judges N probes through be: drivers implementing
// BatchObserver take their batched fast path, every other driver gets a
// sequential Observe loop with identical semantics — so callers route
// unconditionally through this seam and stay driver-agnostic. The
// verdicts and errors are positional; len(expects) must equal
// len(probes).
func ObserveBatch(ctx context.Context, be Backend, probes []*Probe, expects []Expectation) ([]Verdict, []error) {
	if bo, ok := be.(BatchObserver); ok {
		return bo.ObserveBatch(ctx, probes, expects)
	}
	verdicts := make([]Verdict, len(probes))
	errs := make([]error, len(probes))
	for i, p := range probes {
		verdicts[i], errs[i] = be.Observe(ctx, p, expects[i])
	}
	return verdicts, errs
}

// Sweeper is the optional Backend extension for drivers that track their
// switch's expected flow table themselves — a live proxy driver learning
// it from the FlowMods it forwards. Fleet.AttachBackend requires it:
// such members are swept through the driver instead of a facade Verifier.
type Sweeper interface {
	// SweepExpected generates the steady-state probe set of the driver's
	// expected table under the given worker budget, returning the
	// table-change epoch the sweep ran at.
	SweepExpected(ctx context.Context, workers int) (uint64, []ProbeResult)
}

// BackendOp is one resolved rule operation crossing the driver seam. The
// facade layers translate transport-level operations (HTTP RuleOps: ids,
// JSON field maps) into concrete rules before handing them to a Backend.
type BackendOp struct {
	// Op is "add", "modify", or "delete".
	Op string
	// ID selects the rule for modify and delete.
	ID uint64
	// Rule is the rule to add, or the resolved pre-image of the rule
	// being modified or deleted — nil when the caller could not resolve
	// the id to a rule. Drivers addressing rules by id alone (SimBackend)
	// work without it; drivers that must build wire operations from the
	// rule's match and priority (ProxyBackend) reject unresolved modify
	// and delete ops rather than guess (a guessed match could address
	// the wrong flows on a live switch).
	Rule *Rule
	// Actions is the replacement action list for modify.
	Actions []Action
}

// BackendEventType classifies one driver lifecycle event.
type BackendEventType uint8

// Backend event types.
const (
	// BackendConnected: the driver's transport is up.
	BackendConnected BackendEventType = iota
	// BackendControllerConnected: a controller attached to the driver's
	// controller-side listener (proxy drivers).
	BackendControllerConnected
	// BackendDisconnected: the transport failed; Err carries the cause.
	// Drivers with reconnect enabled begin backoff retries after this.
	BackendDisconnected
	// BackendReconnected: a driver re-established its transport after a
	// BackendDisconnected; in-flight work that resolved as unobserved
	// during the outage can be retried.
	BackendReconnected
	// BackendRuleConfirmed: the driver's own monitoring confirmed a rule
	// in the data plane (proxy drivers proxying a live controller).
	BackendRuleConfirmed
	// BackendAlarm: the driver's own monitoring concluded a rule is
	// misbehaving in the data plane.
	BackendAlarm
	// BackendClosed: Close ran; the event stream ends after this.
	BackendClosed
)

// String names the event type.
func (t BackendEventType) String() string {
	switch t {
	case BackendConnected:
		return "connected"
	case BackendControllerConnected:
		return "controller_connected"
	case BackendDisconnected:
		return "disconnected"
	case BackendReconnected:
		return "reconnected"
	case BackendRuleConfirmed:
		return "rule_confirmed"
	case BackendAlarm:
		return "alarm"
	case BackendClosed:
		return "closed"
	default:
		return fmt.Sprintf("backend_event(%d)", uint8(t))
	}
}

// BackendEvent is one driver lifecycle event.
type BackendEvent struct {
	// Type classifies the event.
	Type BackendEventType
	// SwitchID is the switch the driver fronts.
	SwitchID uint32
	// Rule is the rule id for rule-level events.
	Rule uint64
	// Err carries the failure cause for disconnect events.
	Err error
	// Detail is a human-readable one-liner.
	Detail string
}

// EventDropCounter is the optional Backend extension for drivers that
// count events dropped from their Events stream (the buffer overflowed
// with no consumer keeping up). The Service surfaces these counts per
// switch in /metrics (JSON events_dropped and the Prometheus counter
// monocle_backend_events_dropped_total): a silently lossy event stream
// would otherwise hide exactly the disconnect/reconnect evidence an
// operator needs.
type EventDropCounter interface {
	// EventDrops reports the number of events dropped so far, including
	// any wrapped driver's own drops.
	EventDrops() uint64
}

// UnwrapBackend returns the innermost driver behind any wrapping layers
// (a RecordBackend, the Service's event tap) by walking Unwrap() Backend
// methods — for callers that need the concrete driver type, the way
// errors.Unwrap walks wrapped errors.
func UnwrapBackend(be Backend) Backend {
	for {
		u, ok := be.(interface{ Unwrap() Backend })
		if !ok {
			return be
		}
		inner := u.Unwrap()
		if inner == nil {
			return be
		}
		be = inner
	}
}

// eventRing is the shared non-blocking event plumbing of the built-in
// backends: sends never block the driver, overflow is dropped (and
// counted), and Close ends the stream exactly once.
type eventRing struct {
	mu      sync.Mutex
	ch      chan BackendEvent
	closed  bool
	dropped uint64
}

func newEventRing() *eventRing {
	return &eventRing{ch: make(chan BackendEvent, 64)}
}

func (r *eventRing) emit(ev BackendEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	select {
	case r.ch <- ev:
	default:
		// Overflow: drop rather than block the driver — but count the
		// drop so /metrics can surface the loss.
		r.dropped++
	}
}

// drops reports how many events overflowed the ring.
func (r *eventRing) drops() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// close ends the stream; it reports whether this call closed it.
func (r *eventRing) close() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return false
	}
	r.closed = true
	close(r.ch)
	return true
}

// SimBackend is the simulated switch driver: the data plane is an
// in-memory flow table with TCAM lookup semantics on a private virtual
// clock. Apply mutates the table, Observe evaluates probes against it
// (EvaluateProbe), and mutating the table through Apply with a different
// targeting than the expected table is exactly the hardware-diverged
// fault the monitoring exists to catch. It preserves the behaviour the
// Service had when its data planes were hard-wired tables.
type SimBackend struct {
	id     uint32
	clock  *Sim
	events *eventRing

	mu     sync.Mutex
	table  *Table
	epoch  uint64
	closed bool
}

// NewSimBackend returns a simulated driver for switch id with an empty
// data-plane table. WithTableMiss sets the table's miss behaviour.
func NewSimBackend(id uint32, opts ...Option) *SimBackend {
	set := defaultSettings()
	set.apply(opts)
	table := NewTable()
	table.Miss = set.miss
	return &SimBackend{
		id:     id,
		clock:  NewSim(),
		events: newEventRing(),
		table:  table,
	}
}

// SwitchID implements Backend.
func (b *SimBackend) SwitchID() uint32 { return b.id }

// Clock returns the driver's virtual clock.
func (b *SimBackend) Clock() *Sim { return b.clock }

// Table returns the simulated data-plane table. It is the test and
// fault-injection hook; mutate it only between sweeps (Apply and Observe
// serialize on the driver's own lock, direct table access does not).
func (b *SimBackend) Table() *Table {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.table
}

// Connect implements Backend (simulated transport: nothing to dial).
func (b *SimBackend) Connect(ctx context.Context) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrBackendClosed
	}
	b.events.emit(BackendEvent{Type: BackendConnected, SwitchID: b.id})
	return nil
}

// Close implements Backend.
func (b *SimBackend) Close() error {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	b.events.emit(BackendEvent{Type: BackendClosed, SwitchID: b.id})
	b.events.close()
	return nil
}

// Apply implements Backend: the operation mutates the simulated
// data-plane table. Modify and delete address the rule by op.ID alone,
// so unresolved pre-images are fine here.
func (b *SimBackend) Apply(op BackendOp) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrBackendClosed
	}
	var err error
	switch op.Op {
	case "add":
		if op.Rule == nil {
			return fmt.Errorf("monocle: backend op %q needs a rule", op.Op)
		}
		err = b.table.Insert(op.Rule.Clone())
	case "modify":
		err = b.table.Modify(op.ID, cloneActions(op.Actions))
	case "delete":
		err = b.table.Delete(op.ID)
	default:
		return fmt.Errorf("monocle: unknown backend op %q", op.Op)
	}
	if err != nil {
		return err
	}
	b.epoch++
	return nil
}

// Observe implements Backend by evaluating the probe against the
// simulated table; the data plane is deterministic, so no retries are
// needed and expect is not consulted.
func (b *SimBackend) Observe(ctx context.Context, p *Probe, expect Expectation) (Verdict, error) {
	if err := ctx.Err(); err != nil {
		return VerdictUnexpected, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return VerdictUnexpected, ErrBackendClosed
	}
	return EvaluateProbe(p, b.table), nil
}

// ObserveBatch implements BatchObserver: the whole batch is evaluated
// under one lock acquisition against the simulated table. The seam
// itself adds only the two result-slice allocations on top of the
// per-probe evaluation cost — the alloc pin in the batch tests leans on
// this.
func (b *SimBackend) ObserveBatch(ctx context.Context, probes []*Probe, expects []Expectation) ([]Verdict, []error) {
	_ = expects // the simulated data plane is deterministic; like Observe
	verdicts := make([]Verdict, len(probes))
	errs := make([]error, len(probes))
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, p := range probes {
		if err := ctx.Err(); err != nil {
			verdicts[i], errs[i] = VerdictUnexpected, err
			continue
		}
		if b.closed {
			verdicts[i], errs[i] = VerdictUnexpected, ErrBackendClosed
			continue
		}
		verdicts[i] = EvaluateProbe(p, b.table)
	}
	return verdicts, errs
}

// Epoch implements Backend.
func (b *SimBackend) Epoch() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.epoch
}

// Events implements Backend.
func (b *SimBackend) Events() <-chan BackendEvent { return b.events.ch }

// EventDrops implements EventDropCounter.
func (b *SimBackend) EventDrops() uint64 { return b.events.drops() }

// String identifies the driver in logs.
func (b *SimBackend) String() string { return fmt.Sprintf("sim-backend(S%d)", b.id) }
