// Policy runs the monocled service layer under a monitoring policy: two
// switch classes — latency-sensitive edge switches and a bulky core —
// declared once in the policy language and compiled into per-switch
// probe plans every round. The edge group sweeps every rule each round
// and alerts only on its customer prefix; the core group samples 25% of
// its table per round (seeded, so the schedule is reproducible) and
// rotates through the rest on later rounds. A divergence injected behind
// the verifier's back on each class shows the filter and the sample at
// work: the edge alert fires only for the filtered prefix, the core
// alert fires on whichever round its rule's sample comes up.
package main

import (
	"context"
	"fmt"
	"log"

	"monocle"
)

const policyText = `
# Edge switches: full coverage, alert only on the customer prefix.
policy edge {
  select tag "edge"
  every 50ms
  debounce 1
  alert only nw_dst in 10.0.0.0/8
}

# Core switches: big tables, sample a quarter per round.
policy core {
  select tag "core"
  every 200ms
  sample 25% seed 7
}
`

func main() {
	pol, err := monocle.ParsePolicy(policyText)
	if err != nil {
		log.Fatalf("policy: %v", err)
	}
	svc := monocle.NewService(monocle.WithPolicy(pol))
	defer svc.Close()

	// Two edge switches, one core switch; tags drive group resolution.
	for _, sw := range []monocle.SwitchSpec{
		{ID: 1, Tags: []string{"edge"}},
		{ID: 2, Tags: []string{"edge"}},
		{ID: 9, Tags: []string{"core"}},
	} {
		if _, err := svc.AddSwitch(sw); err != nil {
			log.Fatal(err)
		}
	}
	for id := uint32(1); id <= 2; id++ {
		install(svc, id,
			rule(1, 200, "10.1.0.0/16"), // customer prefix: alertable
			rule(2, 100, "192.168.0.0/16"),
		)
	}
	install(svc, 9,
		rule(1, 400, "10.2.0.0/16"), rule(2, 300, "172.16.0.0/12"),
		rule(3, 200, "192.168.1.0/24"), rule(4, 100, "10.3.0.0/16"),
	)

	for _, plan := range svc.ProbePlans() {
		fmt.Printf("plan: switch %d -> group %q, %d/%d rules this round (%d unsampled)\n",
			plan.Switch, plan.Group, len(plan.Rules), plan.Total, len(plan.Unsampled))
	}

	// Break one rule per class behind the verifier's back.
	breakRule(svc, 1, 2) // edge, non-customer prefix: filtered, no alert
	breakRule(svc, 1, 1) // edge, customer prefix: alerts
	breakRule(svc, 9, 3) // core: alerts once its sample round arrives

	ctx := context.Background()
	for round := 0; round < 8; round++ {
		for _, a := range svc.SweepRound(ctx) {
			fmt.Printf("round %d: [%s] %s\n", round, a.Type, a.Detail)
		}
	}
	for _, g := range svc.Metrics().Groups {
		fmt.Printf("group %q: %d switches, %d rounds, %d rule results\n",
			g.Group, g.Switches, g.Rounds, g.RulesCovered)
	}
}

// rule builds an IPv4-destination ACL rule.
func rule(id uint64, prio int, dst string) *monocle.Rule {
	m := monocle.MatchAll()
	var a, b, c, d, plen int
	fmt.Sscanf(dst, "%d.%d.%d.%d/%d", &a, &b, &c, &d, &plen)
	v := uint64(a)<<24 | uint64(b)<<16 | uint64(c)<<8 | uint64(d)
	m = m.With(monocle.IPDst, monocle.Prefix(monocle.IPDst, v, plen))
	return &monocle.Rule{ID: id, Priority: prio, Match: m, Actions: []monocle.Action{monocle.Output(1)}}
}

// install loads rules into both the expected table and the sim data plane.
func install(svc *monocle.Service, id uint32, rules ...*monocle.Rule) {
	if err := svc.InstallRules(id, rules...); err != nil {
		log.Fatal(err)
	}
}

// breakRule deletes a rule from the data plane only — the hardware
// diverging behind the controller's back.
func breakRule(svc *monocle.Service, id uint32, ruleID uint64) {
	if _, err := svc.ApplyRule(id, monocle.RuleOp{Op: "delete", ID: ruleID, Dataplane: "actual"}); err != nil {
		log.Fatal(err)
	}
}
