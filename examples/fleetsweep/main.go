// Fleetsweep runs the monocled service layer in-process: 8 switches, each
// holding a few hundred ACL rules, fronted by simulated data-plane
// backends (monocle.SimBackend) and verified concurrently under a bounded
// solver-worker budget. Every generated probe is judged against its
// switch's backend through the Backend seam, the service's diff engine
// folds the rounds into alerts, and alert delivery runs through pluggable
// sinks — an in-memory ring plus a stderr log sink here; a production
// deployment would add monocle.NewWebhookSink. The demo shows the three
// cases that matter: a healthy fleet (no alerts), a hardware divergence
// injected behind the verifier's back (exactly one alert), and an
// intentional controller change (no alert, only a delta recompile).
// -json emits the same one-record-per-line format as `probegen -json`.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"monocle"
)

func main() {
	var (
		switches = flag.Int("switches", 8, "member switches in the fleet")
		rules    = flag.Int("rules", 200, "ACL rules per switch")
		workers  = flag.Int("workers", 0, "fleet-wide solver-worker budget (0 = all CPUs)")
		jsonOut  = flag.Bool("json", false, "emit one ResultRecord JSON line per rule")
	)
	flag.Parse()

	// The service: fleet + backends + diff engine + sinks behind one
	// facade. The ring retains alerts for inspection; the log sink
	// mirrors them to stderr the moment they fire.
	ring := monocle.NewRingSink(256)
	svc := monocle.NewService(
		monocle.WithWorkers(*workers),
		monocle.WithAlertSink(ring),
		monocle.WithAlertSink(monocle.NewLogSink(log.New(os.Stderr, "", 0))),
	)
	defer svc.Close()

	profile := monocle.StanfordDataset()
	profile.Rules = *rules
	for id := uint32(1); id <= uint32(*switches); id++ {
		// Each switch gets its own table variant and its id as probe tag.
		p := profile
		p.Seed = int64(id)
		if _, err := svc.AddSwitch(monocle.SwitchSpec{ID: id}); err != nil {
			panic(err)
		}
		_, tableRules := monocle.GenerateDataset(p)
		// InstallRules loads the expected table and the backend data
		// plane together: pre-existing state, no confirmation probes.
		if err := svc.InstallRules(id, tableRules...); err != nil {
			panic(err)
		}
	}

	fmt.Printf("sweeping %d switches x %d rules (worker budget %d)...\n",
		*switches, *rules, *workers)
	start := time.Now()
	alerts := svc.SweepRound(context.Background())
	recs := svc.LastSweep()
	unmon := 0
	victims := map[uint32]uint64{} // first monitorable rule per switch
	perSwitch := map[uint32]int{}
	enc := json.NewEncoder(os.Stdout)
	for _, rec := range recs {
		perSwitch[rec.Switch]++
		if rec.Unmonitorable {
			unmon++
		}
		if rec.Probe != nil {
			if _, ok := victims[rec.Switch]; !ok {
				victims[rec.Switch] = rec.Rule
			}
		}
		if *jsonOut {
			if err := enc.Encode(rec); err != nil {
				panic(err)
			}
		}
	}
	fmt.Printf("swept %d rules across %d switches in %v (%d unmonitorable, %d alerts)\n",
		len(recs), len(perSwitch), time.Since(start).Round(time.Millisecond), unmon, len(alerts))

	// Hardware divergence: one switch silently loses a rule from its data
	// plane — a rule op targeting dataplane:"actual" goes through the
	// Backend driver only, the controller's view is unchanged — so the
	// next sweep's probe is judged against diverged hardware and the diff
	// engine raises exactly one alert. Pick the last member that had a
	// monitorable rule (any fleet size works).
	var badSwitch uint32
	for _, id := range svc.Fleet().Switches() {
		if _, ok := victims[id]; ok {
			badSwitch = id
		}
	}
	if badSwitch == 0 {
		panic("no switch produced a monitorable rule")
	}
	if _, err := svc.ApplyRule(badSwitch, monocle.RuleOp{
		Op: "delete", ID: victims[badSwitch], Dataplane: "actual",
	}); err != nil {
		panic(err)
	}
	svc.SweepRound(context.Background())
	for _, a := range ring.Alerts() {
		b, _ := json.Marshal(a)
		fmt.Printf("ring retained: %s\n", b)
	}

	// Intentional controller change on switch 1: the expected table and
	// the data plane move together (the default dataplane:"both"), so the
	// diff engine stays quiet and only the changed rule recompiles
	// (epoch-aware session cache). Skip the rule the divergence demo
	// already removed from the hardware.
	v, _ := svc.Fleet().Verifier(1)
	victim := v.Rules()[0]
	divergedCollision := badSwitch == 1 && victim.ID == victims[1]
	if divergedCollision && v.Len() > 1 {
		victim = v.Rules()[1]
		divergedCollision = false
	}
	op := monocle.RuleOp{Op: "delete", ID: victim.ID}
	if divergedCollision {
		// A one-rule fleet reuses the diverged rule: the hardware already
		// dropped it, so only the controller-side delete remains.
		op.Dataplane = "expected"
	}
	if _, err := svc.ApplyRule(1, op); err != nil &&
		!errors.Is(err, monocle.ErrUnmonitorable) {
		panic(err)
	}
	before := ring.Len()
	start = time.Now()
	svc.SweepRound(context.Background())
	stats := v.CacheStats()
	fmt.Printf("re-swept %d rules after one intentional deletion in %v (S1 cache: %d delta recompiles, %d rebuilds)\n",
		len(svc.LastSweep()), time.Since(start).Round(time.Millisecond), stats.DeltaRules, stats.Rebuilds)
	if extra := ring.Len() - before; extra > 0 {
		fmt.Printf("unexpected alerts after an intentional change: %d\n", extra)
	} else {
		fmt.Println("intentional change raised no alerts (hardware recovered, controller view updated)")
	}
}
