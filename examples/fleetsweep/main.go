// Fleetsweep runs the sharded multi-switch sweep service with the
// cross-epoch diff engine in the loop: 8 switches, each holding a few
// hundred ACL rules, verified concurrently through one monocle.Fleet
// under a bounded solver-worker budget. Every generated probe is judged
// against a simulated per-switch data plane, the Differ folds the rounds
// into alerts, and the demo shows the three cases that matter: a healthy
// fleet (no alerts), a hardware divergence injected behind the verifier's
// back (exactly one alert), and an intentional controller change (no
// alert, only a delta recompile). -json emits the same
// one-record-per-line format as `probegen -json`.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"monocle"
)

func main() {
	var (
		switches = flag.Int("switches", 8, "member switches in the fleet")
		rules    = flag.Int("rules", 200, "ACL rules per switch")
		workers  = flag.Int("workers", 0, "fleet-wide solver-worker budget (0 = all CPUs)")
		jsonOut  = flag.Bool("json", false, "emit one ResultRecord JSON line per rule")
	)
	flag.Parse()

	fleet := monocle.NewFleet(
		monocle.WithWorkers(*workers),
		monocle.WithSteadyInterval(2*time.Second),
	)
	profile := monocle.StanfordDataset()
	profile.Rules = *rules
	for id := uint32(1); id <= uint32(*switches); id++ {
		// Each switch gets its own table variant and its id as probe tag.
		p := profile
		p.Seed = int64(id)
		v, err := fleet.AddSwitch(id)
		if err != nil {
			panic(err)
		}
		_, tableRules := monocle.GenerateDataset(p)
		if err := v.Install(tableRules...); err != nil {
			panic(err)
		}
	}

	// The simulated data planes: each switch's hardware state starts as an
	// exact copy of its expected table. Sweep probes are judged against
	// these through the diff engine.
	actual := map[uint32]*monocle.Table{}
	for _, id := range fleet.Switches() {
		v, _ := fleet.Verifier(id)
		t := monocle.NewTable()
		for _, r := range v.Rules() {
			if err := t.Insert(r.Clone()); err != nil {
				panic(err)
			}
		}
		actual[id] = t
	}
	differ := monocle.NewDiffer()

	fmt.Printf("sweeping %d switches x %d rules (worker budget %d)...\n",
		*switches, *rules, *workers)
	enc := json.NewEncoder(os.Stdout)
	start := time.Now()
	perSwitch := map[uint32]int{}
	unmon := 0
	victims := map[uint32]uint64{} // first monitorable rule per switch
	for ev := range fleet.Stream(context.Background()) {
		if ev.Result.Err != nil && !errors.Is(ev.Result.Err, monocle.ErrUnmonitorable) {
			panic(ev.Result.Err)
		}
		perSwitch[ev.SwitchID]++
		if errors.Is(ev.Result.Err, monocle.ErrUnmonitorable) {
			unmon++
		}
		if ev.Result.Probe != nil {
			if _, ok := victims[ev.SwitchID]; !ok {
				victims[ev.SwitchID] = ev.Result.Rule.ID
			}
			differ.ObserveVerdict(ev, monocle.EvaluateProbe(ev.Result.Probe, actual[ev.SwitchID]))
		} else {
			differ.Observe(ev)
		}
		if *jsonOut {
			if err := enc.Encode(ev.Record()); err != nil {
				panic(err)
			}
		}
	}
	alerts := differ.EndSweep()
	total := 0
	for id := uint32(1); id <= uint32(*switches); id++ {
		total += perSwitch[id]
	}
	fmt.Printf("swept %d rules across %d switches in %v (%d unmonitorable, %d alerts)\n",
		total, len(perSwitch), time.Since(start).Round(time.Millisecond), unmon, len(alerts))

	// round sweeps once more and reports the diff engine's alerts.
	round := func() []monocle.Alert {
		for _, ev := range fleet.Sweep(context.Background()) {
			if ev.Result.Probe != nil {
				differ.ObserveVerdict(ev, monocle.EvaluateProbe(ev.Result.Probe, actual[ev.SwitchID]))
			} else {
				differ.Observe(ev)
			}
		}
		return differ.EndSweep()
	}

	// Hardware divergence: one switch silently loses a rule from its data
	// plane — the controller's view is unchanged, so the next sweep's
	// probe for that rule is judged against diverged hardware and the
	// diff engine raises exactly one alert. Pick the last member that had
	// a monitorable rule (any fleet size works).
	var badSwitch uint32
	for _, id := range fleet.Switches() {
		if _, ok := victims[id]; ok {
			badSwitch = id
		}
	}
	if badSwitch == 0 {
		panic("no switch produced a monitorable rule")
	}
	if err := actual[badSwitch].Delete(victims[badSwitch]); err != nil {
		panic(err)
	}
	for _, a := range round() {
		b, _ := json.Marshal(a)
		fmt.Printf("ALERT %s\n", b)
	}

	// Intentional controller change on switch 1: the expected table and
	// the data plane move together, so the diff engine stays quiet and
	// only the changed rule recompiles (epoch-aware session cache). Skip
	// the rule the divergence demo already removed from the hardware.
	v, _ := fleet.Verifier(1)
	victim := v.Rules()[0]
	divergedCollision := badSwitch == 1 && victim.ID == victims[1]
	if divergedCollision && v.Len() > 1 {
		victim = v.Rules()[1]
		divergedCollision = false
	}
	if _, err := v.Delete(victim.ID); err != nil && !errors.Is(err, monocle.ErrUnmonitorable) {
		panic(err)
	}
	// A one-rule fleet reuses the diverged rule: the hardware already
	// dropped it, so only the controller-side delete remains.
	if err := actual[1].Delete(victim.ID); err != nil && !divergedCollision {
		panic(err)
	}
	start = time.Now()
	n := len(fleet.Sweep(context.Background()))
	stats := v.CacheStats()
	fmt.Printf("re-swept %d rules after one intentional deletion in %v (S1 cache: %d delta recompiles, %d rebuilds)\n",
		n, time.Since(start).Round(time.Millisecond), stats.DeltaRules, stats.Rebuilds)
	if extra := round(); len(extra) > 0 {
		fmt.Printf("unexpected alerts after an intentional change: %d\n", len(extra))
	} else {
		fmt.Println("intentional change raised no alerts (hardware recovered, controller view updated)")
	}
}
