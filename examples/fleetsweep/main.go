// Fleetsweep runs the sharded multi-switch sweep service: 8 switches,
// each holding a few hundred ACL rules, verified concurrently through one
// monocle.Fleet under a bounded solver-worker budget. Events stream over
// a context-aware channel as each switch's sweep completes; -json emits
// the same one-record-per-line format as `probegen -json`, and a second
// sweep after a rule change shows the epoch-aware recompilation at work.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"monocle"
)

func main() {
	var (
		switches = flag.Int("switches", 8, "member switches in the fleet")
		rules    = flag.Int("rules", 200, "ACL rules per switch")
		workers  = flag.Int("workers", 0, "fleet-wide solver-worker budget (0 = all CPUs)")
		jsonOut  = flag.Bool("json", false, "emit one ResultRecord JSON line per rule")
	)
	flag.Parse()

	fleet := monocle.NewFleet(
		monocle.WithWorkers(*workers),
		monocle.WithSteadyInterval(2*time.Second),
	)
	profile := monocle.StanfordDataset()
	profile.Rules = *rules
	for id := uint32(1); id <= uint32(*switches); id++ {
		// Each switch gets its own table variant and its id as probe tag.
		p := profile
		p.Seed = int64(id)
		v, err := fleet.AddSwitch(id)
		if err != nil {
			panic(err)
		}
		_, tableRules := monocle.GenerateDataset(p)
		if err := v.Install(tableRules...); err != nil {
			panic(err)
		}
	}

	fmt.Printf("sweeping %d switches x %d rules (worker budget %d)...\n",
		*switches, *rules, *workers)
	enc := json.NewEncoder(os.Stdout)
	start := time.Now()
	perSwitch := map[uint32]int{}
	unmon := 0
	for ev := range fleet.Stream(context.Background()) {
		if ev.Result.Err != nil && !errors.Is(ev.Result.Err, monocle.ErrUnmonitorable) {
			panic(ev.Result.Err)
		}
		perSwitch[ev.SwitchID]++
		if errors.Is(ev.Result.Err, monocle.ErrUnmonitorable) {
			unmon++
		}
		if *jsonOut {
			if err := enc.Encode(ev.Record()); err != nil {
				panic(err)
			}
		}
	}
	total := 0
	for id := uint32(1); id <= uint32(*switches); id++ {
		total += perSwitch[id]
	}
	fmt.Printf("swept %d rules across %d switches in %v (%d unmonitorable)\n",
		total, len(perSwitch), time.Since(start).Round(time.Millisecond), unmon)

	// Dynamic update on one member: only the changed rule recompiles.
	v, _ := fleet.Verifier(1)
	victim := v.Rules()[0]
	if _, err := v.Delete(victim.ID); err != nil && !errors.Is(err, monocle.ErrUnmonitorable) {
		panic(err)
	}
	start = time.Now()
	n := len(fleet.Sweep(context.Background()))
	stats := v.CacheStats()
	fmt.Printf("re-swept %d rules after one deletion in %v (S1 cache: %d delta recompiles, %d rebuilds)\n",
		n, time.Since(start).Round(time.Millisecond), stats.DeltaRules, stats.Rebuilds)
}
