// Coloring demonstrates the §6 catching-rule planning: it generates a
// WAN-like topology, colors it for both monitoring strategies, and shows
// how few reserved header values (and catching rules per switch) Monocle
// needs compared to the one-id-per-switch baseline.
package main

import (
	"flag"
	"fmt"

	"monocle"
)

func main() {
	n := flag.Int("n", 120, "switches in the generated WAN topology")
	flag.Parse()

	tp := monocle.Waxman(*n, 0.4, 0.15, 42)
	g := tp.Graph
	fmt.Printf("topology %s: %d switches, %d links, max degree %d\n\n",
		tp.Name, g.N, g.Edges(), g.MaxDegree())

	no := monocle.NoColoring(g)
	s1 := monocle.PlanStrategy1(g, 2_000_000)
	s2 := monocle.PlanStrategy2(g, 2_000_000)

	fmt.Printf("reserved probe-tag values needed:\n")
	fmt.Printf("  no coloring (one id per switch): %s\n", no)
	fmt.Printf("  strategy 1 (single field):       %s\n", s1)
	fmt.Printf("  strategy 2 (two fields):         %s\n", s2)

	fmt.Printf("\nwith strategy 1, every switch installs %d catching rules\n", s1.Values-1)
	fmt.Printf("(one per reserved value other than its own color)\n")

	if !monocle.ValidColoring(g, s1.Colors) {
		panic("invalid strategy-1 coloring")
	}
	if !monocle.ValidColoring(g.Square(), s2.Colors) {
		panic("invalid strategy-2 coloring")
	}
}
