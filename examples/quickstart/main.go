// Quickstart: the smallest end-to-end Monocle scenario, all in-process,
// importing only the public `monocle` package.
//
// A monitored switch S2 sits between S1 and S3 (the catchers). A
// controller installs three forwarding rules through the Monocle proxy,
// each is verified in the data plane by SAT-generated probes
// (single-switch dynamic-update verification), steady-state monitoring
// starts, and then we silently remove one rule from the data plane — the
// failure the control plane cannot see. Monocle raises an alarm within
// its 150 ms detection timeout plus the probing-cycle position.
package main

import (
	"fmt"
	"time"

	"monocle"
)

func main() {
	s := monocle.NewSim()
	mux := monocle.NewMultiplexer()

	// Line topology: S1 <-> S2 <-> S3.
	sw := make([]*monocle.SimSwitch, 4) // 1-indexed
	for i := 1; i <= 3; i++ {
		sw[i] = monocle.NewSimSwitch(uint32(i), s, monocle.ProfileHP5406zl(), int64(i))
	}
	monocle.ConnectSwitches(sw[1], 1, sw[2], 1, 100*time.Microsecond)
	monocle.ConnectSwitches(sw[2], 2, sw[3], 1, 100*time.Microsecond)

	// Monitors: every switch gets one (neighbours act as probe catchers).
	mons := make([]*monocle.Monitor, 4)
	peers := map[int]map[monocle.PortID]uint32{
		1: {1: 2}, 2: {1: 1, 2: 3}, 3: {1: 2},
	}
	for i := 1; i <= 3; i++ {
		cfg := monocle.NewMonitorConfig(uint32(i), monocle.WithPeers(peers[i]))
		if i == 2 {
			cfg.OnAlarm = func(ruleID uint64, at monocle.Time) {
				fmt.Printf("[%8v] ALARM: rule %d missing from the data plane!\n", at.Round(time.Millisecond), ruleID)
			}
			cfg.OnRuleConfirmed = func(ruleID uint64, at monocle.Time) {
				fmt.Printf("[%8v] confirmed: rule %d verified in the data plane\n", at.Round(time.Millisecond), ruleID)
			}
		}
		mon := monocle.NewMonitor(s, cfg)
		mux.Register(mon)
		mons[i] = mon
		this := sw[i]
		mon.ToSwitch = func(msg monocle.Message, xid uint32) { this.FromController(msg, xid) }
		this.ToController = func(msg monocle.Message, xid uint32) { mon.OnSwitchMessage(msg, xid) }
		mon.ToController = func(monocle.Message, uint32) {}
		// Catching rules (reserved tag values 1..3, one per switch).
		for _, cr := range mon.CatchRules([]uint32{1, 2, 3}) {
			if err := mon.Preinstall(cr); err != nil {
				panic(err)
			}
			if err := this.DataTable().Insert(cr.Clone()); err != nil {
				panic(err)
			}
		}
	}

	// The "controller": install three flows on S2 through the proxy.
	fmt.Println("installing 3 rules through the Monocle proxy...")
	for i := 0; i < 3; i++ {
		m := monocle.MatchAll().
			WithExact(monocle.EthType, monocle.EthTypeIPv4).
			WithExact(monocle.IPSrc, uint64(10<<24|i+1))
		wm, err := monocle.FromMatch(m)
		if err != nil {
			panic(err)
		}
		mons[2].OnControllerMessage(&monocle.FlowMod{
			Match: wm, Cookie: uint64(100 + i), Command: monocle.FCAdd,
			Priority: 10, BufferID: monocle.BufferNone, OutPort: monocle.PortNone,
			Actions: []monocle.WireAction{monocle.OutputAction(2)},
		}, uint32(i))
	}
	s.RunUntil(2 * time.Second)

	fmt.Println("starting steady-state monitoring at 500 probes/s...")
	mons[2].StartSteadyState()
	s.RunUntil(3 * time.Second)

	fmt.Printf("[%8v] injecting failure: rule 101 silently dropped from hardware\n",
		s.Now().Round(time.Millisecond))
	sw[2].FailRule(101)
	s.RunUntil(6 * time.Second)

	st := mons[2].Stats
	fmt.Printf("\nmonitor stats: %d probes sent, %d caught, %d confirmations, %d alarms\n",
		st.ProbesSent, st.ProbesCaught, st.Confirmations, st.Alarms)
}
