// Consistentupdate reruns the paper's §8.1.2 end-to-end experiment
// (Figure 5): 300 flows are rerouted from S1→S2 to S1→S3→S2 where S3
// acknowledges rules before they reach its data plane. With plain
// barriers the update blackholes thousands of packets; with Monocle's
// data plane confirmations it drops none, at a comparable update time.
package main

import (
	"flag"
	"fmt"

	"monocle"
)

func main() {
	flows := flag.Int("flows", 300, "number of flows to reroute")
	flag.Parse()

	fmt.Printf("rerouting %d flows (300 pkt/s each) via an inconsistent switch\n\n", *flows)
	results := monocle.DefaultFigure5(*flows)
	fmt.Print(monocle.FormatFigure5(results))
	fmt.Println("\nper-flow detail (first 5 flows, HP/Monocle run):")
	for _, r := range results {
		if r.Mode != "Monocle" || r.Switch != "HP 5406zl" {
			continue
		}
		for _, f := range r.Flows[:5] {
			fmt.Printf("  flow %3d: upstream updated %8v, dataplane ready %8v, dropped %.0f\n",
				f.ID, f.UpstreamUpdated, f.DataplaneReady, f.DroppedPackets)
		}
	}
}
