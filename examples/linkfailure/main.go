// Linkfailure reruns the paper's §8.1.1 steady-state experiment
// (Figure 4): a monitored switch holds 1000 L3 rules probed at 500/s;
// rules (or a whole 102-rule link) fail silently in the data plane and
// Monocle localizes them within seconds.
package main

import (
	"flag"
	"fmt"

	"monocle"
)

func main() {
	reps := flag.Int("reps", 20, "repetitions per scenario (paper: 1000)")
	rules := flag.Int("rules", 1000, "rules in the monitored flow table")
	flag.Parse()

	fmt.Printf("monitoring %d rules at 500 probes/s; injecting failures (%d reps)\n\n", *rules, *reps)
	cfg := monocle.DefaultFigure4(*reps)
	cfg.Rules = *rules
	res := monocle.RunFigure4(cfg)
	fmt.Print(monocle.FormatFigure4(res))
}
