// Cluster runs the sharded monocled control plane in-process: two
// replica services (each owning a deterministic slice of a 6-switch
// fleet, assigned by rendezvous hashing on switch id) behind one
// monocle.Coordinator that re-exposes them as a single aggregated HTTP
// surface. The walkthrough registers the fleet through the coordinator
// (each registration routed to its owning shard), installs a rule per
// switch, sweeps the whole cluster in lockstep, injects a silent
// hardware fault behind one replica's back, and reads the merged global
// alert stream plus the live shard map — the same API a single monocled
// serves, now backed by N processes. A production deployment runs
// cmd/monocluster instead of httptest servers; the wiring is identical.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"monocle"
)

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func call(method, url string, body any) []byte {
	var buf bytes.Buffer
	if body != nil {
		must(json.NewEncoder(&buf).Encode(body))
	}
	req, err := http.NewRequest(method, url, &buf)
	must(err)
	resp, err := http.DefaultClient.Do(req)
	must(err)
	defer resp.Body.Close()
	var out bytes.Buffer
	_, err = out.ReadFrom(resp.Body)
	must(err)
	if resp.StatusCode >= 300 {
		log.Fatalf("%s %s: %d: %s", method, url, resp.StatusCode, out.Bytes())
	}
	return out.Bytes()
}

func main() {
	// Two replicas — in production these are separate monocled processes
	// (cmd/monocluster spawns or joins them); here each is an in-process
	// service behind its own HTTP listener.
	var specs []monocle.ReplicaSpec
	for i := 0; i < 2; i++ {
		svc := monocle.NewService(monocle.WithWorkers(2), monocle.WithDebounce(1))
		defer svc.Close()
		ts := httptest.NewServer(svc.Handler())
		defer ts.Close()
		specs = append(specs, monocle.ReplicaSpec{
			Name: fmt.Sprintf("shard-%d", i), URL: ts.URL,
		})
	}

	// The coordinator owns the shard map and the aggregated surface.
	coord, err := monocle.NewCoordinator(monocle.ClusterConfig{Replicas: specs})
	must(err)
	defer coord.Close()
	front := httptest.NewServer(coord.Handler())
	defer front.Close()

	// Register 6 switches through the coordinator: each POST /switches is
	// routed to the shard that rendezvous hashing assigns the id to.
	for id := uint32(1); id <= 6; id++ {
		call("POST", front.URL+"/switches", monocle.SwitchSpec{ID: id})
		rule := monocle.RuleSpec{ID: 7, Priority: 10,
			Match:   map[string]string{"dl_type": "0x800", "nw_dst": fmt.Sprintf("10.0.%d.0/24", id)},
			Actions: []monocle.ActionSpec{{Output: 2}}}
		call("POST", fmt.Sprintf("%s/switches/%d/rules", front.URL, id),
			monocle.RuleOp{Op: "add", Rule: &rule})
		fmt.Printf("switch %d -> %s\n", id, coord.Owner(id).Name)
	}

	// One POST /sweep sweeps every shard in lockstep.
	fmt.Printf("\nhealthy sweep: %s\n", call("POST", front.URL+"/sweep", nil))

	// Break switch 4's rule on the data plane only — silent rule loss,
	// the paper's core fault — behind whichever replica owns it.
	call("POST", front.URL+"/switches/4/rules",
		monocle.RuleOp{Op: "delete", ID: 7, Dataplane: "actual"})
	fmt.Printf("faulty sweep:  %s\n", call("POST", front.URL+"/sweep", nil))

	// The aggregated alert stream: per-replica streams merged by
	// (round, switch, rule) into one deterministic global order.
	fmt.Printf("\nmerged GET /alerts:\n%s", call("GET", front.URL+"/alerts", nil))

	// The live shard map and the cluster health roll-up.
	fmt.Printf("\nGET /shards:\n%s", call("GET", front.URL+"/shards", nil))
	var health monocle.ClusterHealth
	must(json.Unmarshal(call("GET", front.URL+"/healthz", nil), &health))
	fmt.Printf("\ncluster ok=%v ready=%v replicas=%d degraded=%v\n",
		health.OK, health.Ready, len(health.Replicas), health.Degraded)
}
