package monocle

// Line-oriented JSON records for sweep output: cmd/probegen's -json mode
// and fleet sweep consumers emit one ResultRecord per rule, so scripts
// and the sweep service can stream-process results with any JSON tooling.

import "errors"

// ResultRecord is the JSON-friendly form of one probe-generation result.
// Header fields are keyed by their OpenFlow 1.0 names (in_port, dl_vlan,
// nw_src, ...) and omit zero-valued fields.
type ResultRecord struct {
	// Switch is the owning switch id (omitted for single-switch runs).
	Switch uint32 `json:"switch,omitempty"`
	// Epoch is the table-change epoch the probe was generated against
	// (fleet sweeps only).
	Epoch uint64 `json:"epoch,omitempty"`
	// Rule is the probed rule's id.
	Rule uint64 `json:"rule"`
	// Unmonitorable reports that no probe can verify this rule (§3.5).
	Unmonitorable bool `json:"unmonitorable,omitempty"`
	// Error carries any other generation failure.
	Error string `json:"error,omitempty"`
	// Probe is the generated probe; nil when generation failed.
	Probe *ProbeRecord `json:"probe,omitempty"`
}

// ProbeRecord is the JSON-friendly form of one generated probe.
type ProbeRecord struct {
	// Header is the probe packet, keyed by OpenFlow field names.
	Header map[string]uint64 `json:"header"`
	// Present is the expected behaviour with the rule installed.
	Present OutcomeRecord `json:"present"`
	// Absent is the behaviour with the rule missing.
	Absent OutcomeRecord `json:"absent"`
	// Negative marks drop-rule probes confirmed by silence (§3.3).
	Negative bool `json:"negative,omitempty"`
	// Vars/Clauses/Overlapping describe the solver instance.
	Vars        int `json:"vars"`
	Clauses     int `json:"clauses"`
	Overlapping int `json:"overlapping"`
}

// OutcomeRecord is the JSON-friendly form of one probe outcome.
type OutcomeRecord struct {
	// Drop reports the probe is not emitted anywhere.
	Drop bool `json:"drop,omitempty"`
	// ECMP reports exactly one of Emissions occurs (switch's choice).
	ECMP bool `json:"ecmp,omitempty"`
	// Emissions lists the (port, rewritten header) pairs.
	Emissions []EmissionRecord `json:"emissions,omitempty"`
}

// EmissionRecord is one (port, rewritten header) pair.
type EmissionRecord struct {
	Port   uint16            `json:"port"`
	Header map[string]uint64 `json:"header"`
}

// NewResultRecord converts one sweep result for switch switchID at table
// epoch epoch; switchID/epoch zero values are omitted from the JSON.
func NewResultRecord(switchID uint32, epoch uint64, res ProbeResult) ResultRecord {
	rec := ResultRecord{Switch: switchID, Epoch: epoch, Rule: res.Rule.ID}
	switch {
	case errors.Is(res.Err, ErrUnmonitorable):
		rec.Unmonitorable = true
	case res.Err != nil:
		rec.Error = res.Err.Error()
	case res.Probe != nil:
		rec.Probe = newProbeRecord(res.Probe)
	}
	return rec
}

// Record converts a fleet sweep event to its JSON line form.
func (e SweepEvent) Record() ResultRecord {
	return NewResultRecord(e.SwitchID, e.Epoch, e.Result)
}

func newProbeRecord(p *Probe) *ProbeRecord {
	return &ProbeRecord{
		Header:      headerMap(p.Header),
		Present:     newOutcomeRecord(p.Present),
		Absent:      newOutcomeRecord(p.Absent),
		Negative:    p.Negative,
		Vars:        p.Stats.Vars,
		Clauses:     p.Stats.Clauses,
		Overlapping: p.Stats.Overlapping,
	}
}

func newOutcomeRecord(o Outcome) OutcomeRecord {
	rec := OutcomeRecord{Drop: o.Drop, ECMP: o.ECMP}
	for _, e := range o.Emissions {
		rec.Emissions = append(rec.Emissions, EmissionRecord{
			Port:   uint16(e.Port),
			Header: headerMap(e.Header),
		})
	}
	return rec
}

// headerMap renders a header with zero-valued fields omitted.
func headerMap(h Header) map[string]uint64 {
	out := make(map[string]uint64)
	for f := FieldID(0); f < NumFields; f++ {
		if v := h.Get(f); v != 0 {
			out[f.String()] = v
		}
	}
	return out
}
