package monocle

// Line-oriented JSON records for sweep output: cmd/probegen's -json mode
// and fleet sweep consumers emit one ResultRecord per rule, so scripts
// and the sweep service can stream-process results with any JSON tooling.
//
// This file also holds the record/replay drivers built on those records:
// RecordBackend wraps any Backend and captures its complete call and
// event history to a Trace (trace.go), and ReplayBackend re-serves a
// captured trace deterministically — same verdicts, same event order,
// same epochs — so a live-switch failure caught once is reproducible
// offline forever (cmd/monotrace) and in CI.

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// ResultRecord is the JSON-friendly form of one probe-generation result.
// Header fields are keyed by their OpenFlow 1.0 names (in_port, dl_vlan,
// nw_src, ...) and omit zero-valued fields.
type ResultRecord struct {
	// Switch is the owning switch id (omitted for single-switch runs).
	Switch uint32 `json:"switch,omitempty"`
	// Epoch is the table-change epoch the probe was generated against
	// (fleet sweeps only).
	Epoch uint64 `json:"epoch,omitempty"`
	// Rule is the probed rule's id.
	Rule uint64 `json:"rule"`
	// Unmonitorable reports that no probe can verify this rule (§3.5).
	Unmonitorable bool `json:"unmonitorable,omitempty"`
	// Error carries any other generation failure.
	Error string `json:"error,omitempty"`
	// Probe is the generated probe; nil when generation failed.
	Probe *ProbeRecord `json:"probe,omitempty"`
}

// ProbeRecord is the JSON-friendly form of one generated probe.
type ProbeRecord struct {
	// Header is the probe packet, keyed by OpenFlow field names.
	Header map[string]uint64 `json:"header"`
	// Present is the expected behaviour with the rule installed.
	Present OutcomeRecord `json:"present"`
	// Absent is the behaviour with the rule missing.
	Absent OutcomeRecord `json:"absent"`
	// Negative marks drop-rule probes confirmed by silence (§3.3).
	Negative bool `json:"negative,omitempty"`
	// Vars/Clauses/Overlapping describe the solver instance.
	Vars        int `json:"vars"`
	Clauses     int `json:"clauses"`
	Overlapping int `json:"overlapping"`
}

// OutcomeRecord is the JSON-friendly form of one probe outcome.
type OutcomeRecord struct {
	// Drop reports the probe is not emitted anywhere.
	Drop bool `json:"drop,omitempty"`
	// ECMP reports exactly one of Emissions occurs (switch's choice).
	ECMP bool `json:"ecmp,omitempty"`
	// Emissions lists the (port, rewritten header) pairs.
	Emissions []EmissionRecord `json:"emissions,omitempty"`
}

// EmissionRecord is one (port, rewritten header) pair.
type EmissionRecord struct {
	Port   uint16            `json:"port"`
	Header map[string]uint64 `json:"header"`
}

// NewResultRecord converts one sweep result for switch switchID at table
// epoch epoch; switchID/epoch zero values are omitted from the JSON.
func NewResultRecord(switchID uint32, epoch uint64, res ProbeResult) ResultRecord {
	rec := ResultRecord{Switch: switchID, Epoch: epoch, Rule: res.Rule.ID}
	switch {
	case errors.Is(res.Err, ErrUnmonitorable):
		rec.Unmonitorable = true
	case res.Err != nil:
		rec.Error = res.Err.Error()
	case res.Probe != nil:
		rec.Probe = newProbeRecord(res.Probe)
	}
	return rec
}

// Record converts a fleet sweep event to its JSON line form.
func (e SweepEvent) Record() ResultRecord {
	return NewResultRecord(e.SwitchID, e.Epoch, e.Result)
}

func newProbeRecord(p *Probe) *ProbeRecord {
	return &ProbeRecord{
		Header:      headerMap(p.Header),
		Present:     newOutcomeRecord(p.Present),
		Absent:      newOutcomeRecord(p.Absent),
		Negative:    p.Negative,
		Vars:        p.Stats.Vars,
		Clauses:     p.Stats.Clauses,
		Overlapping: p.Stats.Overlapping,
	}
}

func newOutcomeRecord(o Outcome) OutcomeRecord {
	rec := OutcomeRecord{Drop: o.Drop, ECMP: o.ECMP}
	for _, e := range o.Emissions {
		rec.Emissions = append(rec.Emissions, EmissionRecord{
			Port:   uint16(e.Port),
			Header: headerMap(e.Header),
		})
	}
	return rec
}

// headerMap renders a header with zero-valued fields omitted.
func headerMap(h Header) map[string]uint64 {
	out := make(map[string]uint64)
	for f := FieldID(0); f < NumFields; f++ {
		if v := h.Get(f); v != 0 {
			out[f.String()] = v
		}
	}
	return out
}

// headerMapsEqual compares two rendered headers.
func headerMapsEqual(a, b map[string]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// expectName names an Expectation for the trace wire form.
func expectName(e Expectation) string {
	switch e {
	case ExpectPresent:
		return "present"
	case ExpectAbsent:
		return "absent"
	case ExpectModified:
		return "modified"
	default:
		return fmt.Sprintf("expect(%d)", uint8(e))
	}
}

// verdictFromName parses a Verdict's String form back.
func verdictFromName(s string) Verdict {
	for v := VerdictConfirmed; v <= VerdictUnexpected; v++ {
		if v.String() == s {
			return v
		}
	}
	return VerdictUnexpected
}

// traceErr renders a call error for the trace ("" for success).
func traceErr(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// errFromTrace reconstructs a recorded call error, mapping the backend
// sentinels back to their canonical values so errors.Is keeps working
// against a replay.
func errFromTrace(s string) error {
	switch s {
	case "":
		return nil
	case ErrBackendClosed.Error():
		return ErrBackendClosed
	case ErrBackendDisconnected.Error():
		return ErrBackendDisconnected
	default:
		return errors.New(s)
	}
}

// traceOp serializes one BackendOp.
func traceOp(op BackendOp) *TraceOp {
	out := &TraceOp{Op: op.Op, ID: op.ID}
	if op.Rule != nil {
		rs := ruleSpec(op.Rule)
		out.Rule = &rs
	}
	for _, a := range op.Actions {
		out.Actions = append(out.Actions, actionSpec(a))
	}
	return out
}

// traceOpRuleID resolves the rule id a trace op addresses.
func traceOpRuleID(op *TraceOp) uint64 {
	if op == nil {
		return 0
	}
	if op.ID != 0 {
		return op.ID
	}
	if op.Rule != nil {
		return op.Rule.ID
	}
	return 0
}

// backendOpRuleID resolves the rule id a live op addresses.
func backendOpRuleID(op BackendOp) uint64 {
	if op.ID != 0 {
		return op.ID
	}
	if op.Rule != nil {
		return op.Rule.ID
	}
	return 0
}

// traceEvent serializes one BackendEvent.
func traceEvent(ev BackendEvent) *TraceEvent {
	return &TraceEvent{
		Type:   ev.Type.String(),
		Rule:   ev.Rule,
		Err:    traceErr(ev.Err),
		Detail: ev.Detail,
	}
}

// eventFromTrace reconstructs a recorded BackendEvent for switch id.
func eventFromTrace(id uint32, te *TraceEvent) BackendEvent {
	ev := BackendEvent{SwitchID: id, Rule: te.Rule, Err: errFromTrace(te.Err), Detail: te.Detail}
	for t := BackendConnected; t <= BackendClosed; t++ {
		if t.String() == te.Type {
			ev.Type = t
			break
		}
	}
	return ev
}

// describeTraceRecord summarizes a trace record for divergence reports.
func describeTraceRecord(rec *TraceRecord) string {
	switch rec.Kind {
	case TraceKindApply:
		return fmt.Sprintf("apply %s rule %d", rec.Op.Op, traceOpRuleID(rec.Op))
	case TraceKindObserve:
		return fmt.Sprintf("observe rule %d expect %s", rec.RuleID, rec.Expect)
	default:
		return rec.Kind
	}
}

// RecordBackend wraps a Backend and captures its complete session — every
// Connect/Apply/Observe/Epoch call with its outcome and every
// BackendEvent — to a Trace, in call order, while delegating all
// behaviour to the wrapped driver. The Service wraps every switch's
// driver in one when WithRecordDir is set, adding the session-layer
// annotations (RecordSpec, RecordRuleOp, MarkRound) that make the trace
// replayable end to end by cmd/monotrace.
type RecordBackend struct {
	inner    Backend
	tw       *TraceWriter
	events   *eventRing
	pumpDone chan struct{}

	mu     sync.Mutex
	closed bool
}

// NewRecordBackend wraps inner, recording its session to tw. The
// recorder owns tw: Close flushes and closes it.
func NewRecordBackend(inner Backend, tw *TraceWriter) *RecordBackend {
	rb := &RecordBackend{
		inner:    inner,
		tw:       tw,
		events:   newEventRing(),
		pumpDone: make(chan struct{}),
	}
	go rb.pump()
	return rb
}

// pump forwards the inner driver's events to the recorder's own stream,
// writing each to the trace on the way through.
func (rb *RecordBackend) pump() {
	defer close(rb.pumpDone)
	for ev := range rb.inner.Events() {
		rb.append(TraceRecord{Kind: TraceKindEvent, Event: traceEvent(ev)})
		rb.events.emit(ev)
	}
	rb.events.close()
}

// append writes one record, swallowing write errors: a full disk must
// degrade the recording, never the monitoring.
func (rb *RecordBackend) append(rec TraceRecord) {
	_ = rb.tw.Append(rec)
}

// Unwrap returns the wrapped driver (UnwrapBackend walks this).
func (rb *RecordBackend) Unwrap() Backend { return rb.inner }

// SwitchID implements Backend.
func (rb *RecordBackend) SwitchID() uint32 { return rb.inner.SwitchID() }

// Connect implements Backend, recording the call.
func (rb *RecordBackend) Connect(ctx context.Context) error {
	err := rb.inner.Connect(ctx)
	rb.append(TraceRecord{Kind: TraceKindConnect, Err: traceErr(err), Epoch: rb.inner.Epoch()})
	return err
}

// Close implements Backend: the inner driver closes first, the event
// pump drains its remaining events into the trace, and only then is the
// closing record written and the trace flushed shut.
func (rb *RecordBackend) Close() error {
	rb.mu.Lock()
	if rb.closed {
		rb.mu.Unlock()
		return nil
	}
	rb.closed = true
	rb.mu.Unlock()
	err := rb.inner.Close()
	<-rb.pumpDone
	rb.append(TraceRecord{Kind: TraceKindClose, Err: traceErr(err)})
	if cerr := rb.tw.Close(); err == nil {
		err = cerr
	}
	return err
}

// Apply implements Backend, recording the operation, the driver's
// post-apply epoch, and the outcome.
func (rb *RecordBackend) Apply(op BackendOp) error {
	err := rb.inner.Apply(op)
	rb.append(TraceRecord{Kind: TraceKindApply, Op: traceOp(op), Epoch: rb.inner.Epoch(), Err: traceErr(err)})
	return err
}

// Observe implements Backend, recording the probe (its header is the
// replay matching key), the expectation, and the verdict or error.
func (rb *RecordBackend) Observe(ctx context.Context, p *Probe, expect Expectation) (Verdict, error) {
	v, err := rb.inner.Observe(ctx, p, expect)
	rb.append(TraceRecord{
		Kind:    TraceKindObserve,
		Probe:   newProbeRecord(p),
		RuleID:  p.RuleID,
		Expect:  expectName(expect),
		Verdict: v.String(),
		Err:     traceErr(err),
	})
	return v, err
}

// ObserveBatch implements BatchObserver: the batch takes the wrapped
// driver's fast path (through the package-level ObserveBatch seam) and
// is captured as one TraceKindObserve record per probe in submission
// order — so a trace recorded through the batch path is byte-compatible
// with one-shot recordings and replays through either path.
func (rb *RecordBackend) ObserveBatch(ctx context.Context, probes []*Probe, expects []Expectation) ([]Verdict, []error) {
	verdicts, errs := ObserveBatch(ctx, rb.inner, probes, expects)
	for i, p := range probes {
		rb.append(TraceRecord{
			Kind:    TraceKindObserve,
			Probe:   newProbeRecord(p),
			RuleID:  p.RuleID,
			Expect:  expectName(expects[i]),
			Verdict: verdicts[i].String(),
			Err:     traceErr(errs[i]),
		})
	}
	return verdicts, errs
}

// Epoch implements Backend, annotating the poll in the trace.
func (rb *RecordBackend) Epoch() uint64 {
	e := rb.inner.Epoch()
	rb.append(TraceRecord{Kind: TraceKindEpoch, Epoch: e})
	return e
}

// Events implements Backend.
func (rb *RecordBackend) Events() <-chan BackendEvent { return rb.events.ch }

// EventDrops implements EventDropCounter, including the wrapped driver's
// own drops.
func (rb *RecordBackend) EventDrops() uint64 {
	d := rb.events.drops()
	if dc, ok := rb.inner.(EventDropCounter); ok {
		d += dc.EventDrops()
	}
	return d
}

// RecordSpec annotates the trace with the switch's registration spec, so
// an offline replay can rebuild the same Service-side configuration.
func (rb *RecordBackend) RecordSpec(spec SwitchSpec) {
	sp := spec
	rb.append(TraceRecord{Kind: TraceKindSpec, Spec: &sp})
}

// RecordRuleOp annotates one service-level rule operation.
func (rb *RecordBackend) RecordRuleOp(op RuleOp) {
	o := op
	rb.append(TraceRecord{Kind: TraceKindRuleOp, RuleOp: &o})
}

// MarkRound annotates the start of sweep round n.
func (rb *RecordBackend) MarkRound(n uint64) {
	rb.append(TraceRecord{Kind: TraceKindRound, Round: n})
}

// Flush forces the trace's pending batch to disk (crash-safety point for
// long-running recordings).
func (rb *RecordBackend) Flush() error { return rb.tw.Flush() }

// String identifies the driver in logs.
func (rb *RecordBackend) String() string {
	return fmt.Sprintf("record-backend(S%d)", rb.inner.SwitchID())
}

// DivergenceError is the structured report ReplayBackend returns when the
// replayed call sequence departs from the recording: the position and
// recorded call it expected next, against the call the replay actually
// made. Once a replay diverges, every subsequent call returns the same
// report.
type DivergenceError struct {
	// Switch is the replayed switch's id.
	Switch uint32 `json:"switch"`
	// Seq is the trace sequence number of the record the replay departed
	// from (0 when the trace was exhausted).
	Seq uint64 `json:"seq,omitempty"`
	// Pos is the record's index within the trace.
	Pos int `json:"pos"`
	// Want describes the recorded call the trace expected next.
	Want string `json:"want"`
	// Got describes the call the replayed session made instead.
	Got string `json:"got"`
}

// Error implements error.
func (e *DivergenceError) Error() string {
	return fmt.Sprintf("monocle: replay diverged on switch %d at trace record %d (seq %d): recorded %s, replayed session did %s",
		e.Switch, e.Pos, e.Seq, e.Want, e.Got)
}

// ReplayBackend re-serves a recorded Trace as a live Backend: Apply and
// Observe return exactly the recorded outcomes in exactly the recorded
// order, recorded BackendEvents re-emit on the Events stream at the
// positions they were captured, and Epoch tracks the recorded epochs —
// with zero network access by construction. A call sequence that departs
// from the recording fails loudly with a DivergenceError instead of
// guessing.
type ReplayBackend struct {
	header TraceHeader
	recs   []TraceRecord
	events *eventRing

	mu     sync.Mutex
	pos    int // index of the next unconsumed record
	epoch  uint64
	div    *DivergenceError
	closed bool
}

// NewReplayBackend builds a replay driver over a decoded trace.
func NewReplayBackend(tr *Trace) *ReplayBackend {
	return &ReplayBackend{
		header: tr.Header,
		recs:   tr.Records,
		events: newEventRing(),
	}
}

// OpenReplayBackend decodes the trace at path into a replay driver.
func OpenReplayBackend(path string) (*ReplayBackend, error) {
	tr, err := ReadTraceFile(path)
	if err != nil {
		return nil, err
	}
	return NewReplayBackend(tr), nil
}

// Divergence returns the replay's divergence report, nil while the
// session still matches the recording.
func (rb *ReplayBackend) Divergence() *DivergenceError {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	return rb.div
}

// advanceLocked consumes everything up to the next call record: recorded
// events re-emit on the Events stream, annotations are skipped.
func (rb *ReplayBackend) advanceLocked() {
	for rb.pos < len(rb.recs) {
		rec := &rb.recs[rb.pos]
		switch rec.Kind {
		case TraceKindEvent:
			if rec.Event != nil {
				rb.events.emit(eventFromTrace(rb.header.Switch, rec.Event))
			}
		case TraceKindEpoch, TraceKindSpec, TraceKindRuleOp, TraceKindRound:
			// Annotations: session context, not backend calls.
		default:
			return
		}
		rb.pos++
	}
}

// serveLocked serves the next call record, verifying it matches what the
// replayed session is doing. match returns "" on a match or a
// description of the mismatching call.
func (rb *ReplayBackend) serveLocked(kind string, got string, match func(*TraceRecord) bool) (*TraceRecord, error) {
	if rb.div != nil {
		return nil, rb.div
	}
	rb.advanceLocked()
	if rb.pos >= len(rb.recs) {
		rb.div = &DivergenceError{Switch: rb.header.Switch, Pos: rb.pos, Want: "end of trace", Got: got}
		return nil, rb.div
	}
	rec := &rb.recs[rb.pos]
	if rec.Kind != kind || (match != nil && !match(rec)) {
		rb.div = &DivergenceError{Switch: rb.header.Switch, Seq: rec.Seq, Pos: rb.pos, Want: describeTraceRecord(rec), Got: got}
		return nil, rb.div
	}
	rb.pos++
	if rec.Epoch > rb.epoch {
		rb.epoch = rec.Epoch
	}
	rb.advanceLocked()
	return rec, nil
}

// SwitchID implements Backend.
func (rb *ReplayBackend) SwitchID() uint32 { return rb.header.Switch }

// Connect implements Backend by serving the recorded connect call (and
// re-emitting any events recorded before it).
func (rb *ReplayBackend) Connect(ctx context.Context) error {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	if rb.closed {
		return ErrBackendClosed
	}
	rec, err := rb.serveLocked(TraceKindConnect, "connect", nil)
	if err != nil {
		return err
	}
	return errFromTrace(rec.Err)
}

// Apply implements Backend by serving the next recorded apply: the
// operation must address the same op kind and rule id the recording did.
func (rb *ReplayBackend) Apply(op BackendOp) error {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	if rb.closed {
		return ErrBackendClosed
	}
	got := fmt.Sprintf("apply %s rule %d", op.Op, backendOpRuleID(op))
	rec, err := rb.serveLocked(TraceKindApply, got, func(r *TraceRecord) bool {
		return r.Op != nil && r.Op.Op == op.Op && traceOpRuleID(r.Op) == backendOpRuleID(op)
	})
	if err != nil {
		return err
	}
	return errFromTrace(rec.Err)
}

// Observe implements Backend by serving the next recorded observation:
// the probe's header and the expectation must match the recording, and
// the recorded verdict (or error) is returned. Solver-internal stats are
// deliberately not part of the match, so a replay survives solver
// evolution as long as the probe stream itself is unchanged.
func (rb *ReplayBackend) Observe(ctx context.Context, p *Probe, expect Expectation) (Verdict, error) {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	if rb.closed {
		return VerdictUnexpected, ErrBackendClosed
	}
	hm := headerMap(p.Header)
	got := fmt.Sprintf("observe rule %d expect %s", p.RuleID, expectName(expect))
	rec, err := rb.serveLocked(TraceKindObserve, got, func(r *TraceRecord) bool {
		return r.Probe != nil && r.Expect == expectName(expect) && headerMapsEqual(r.Probe.Header, hm)
	})
	if err != nil {
		return VerdictUnexpected, err
	}
	if rec.Err != "" {
		return VerdictUnexpected, errFromTrace(rec.Err)
	}
	return verdictFromName(rec.Verdict), nil
}

// ObserveBatch implements BatchObserver: the batch is served as N
// consecutive observe records under one lock acquisition, with exactly
// the per-probe matching of Observe — a trace recorded one-shot replays
// through the batch path and vice versa, because both paths produce the
// same flat record stream.
func (rb *ReplayBackend) ObserveBatch(ctx context.Context, probes []*Probe, expects []Expectation) ([]Verdict, []error) {
	verdicts := make([]Verdict, len(probes))
	errs := make([]error, len(probes))
	rb.mu.Lock()
	defer rb.mu.Unlock()
	for i, p := range probes {
		if err := ctx.Err(); err != nil {
			verdicts[i], errs[i] = VerdictUnexpected, err
			continue
		}
		if rb.closed {
			verdicts[i], errs[i] = VerdictUnexpected, ErrBackendClosed
			continue
		}
		hm := headerMap(p.Header)
		expect := expects[i]
		got := fmt.Sprintf("observe rule %d expect %s", p.RuleID, expectName(expect))
		rec, err := rb.serveLocked(TraceKindObserve, got, func(r *TraceRecord) bool {
			return r.Probe != nil && r.Expect == expectName(expect) && headerMapsEqual(r.Probe.Header, hm)
		})
		switch {
		case err != nil:
			verdicts[i], errs[i] = VerdictUnexpected, err
		case rec.Err != "":
			verdicts[i], errs[i] = VerdictUnexpected, errFromTrace(rec.Err)
		default:
			verdicts[i] = verdictFromName(rec.Verdict)
		}
	}
	return verdicts, errs
}

// Epoch implements Backend: the recorded epoch as of the last served
// call.
func (rb *ReplayBackend) Epoch() uint64 {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	return rb.epoch
}

// Events implements Backend.
func (rb *ReplayBackend) Events() <-chan BackendEvent { return rb.events.ch }

// EventDrops implements EventDropCounter.
func (rb *ReplayBackend) EventDrops() uint64 { return rb.events.drops() }

// Close implements Backend: trailing recorded events re-emit, then the
// stream ends. A replay closed before the trace is exhausted is fine —
// partial replays are how bisection works.
func (rb *ReplayBackend) Close() error {
	rb.mu.Lock()
	if rb.closed {
		rb.mu.Unlock()
		return nil
	}
	rb.closed = true
	rb.advanceLocked()
	rb.mu.Unlock()
	rb.events.emit(BackendEvent{Type: BackendClosed, SwitchID: rb.header.Switch})
	rb.events.close()
	return nil
}

// String identifies the driver in logs.
func (rb *ReplayBackend) String() string {
	return fmt.Sprintf("replay-backend(S%d)", rb.header.Switch)
}
