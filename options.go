package monocle

// Functional options shared by Verifier, Fleet, and the Monitor-config
// helper. Options the receiving constructor does not use are ignored, so
// one option list can parameterize a whole deployment.

import (
	"runtime"
	"sort"
	"time"

	"monocle/internal/flowtable"
	"monocle/internal/header"
	"monocle/internal/probe"
)

// Option configures a Verifier, a Fleet, or a MonitorConfig built through
// NewMonitorConfig.
type Option func(*settings)

// settings is the resolved option set.
type settings struct {
	probeField FieldID
	probeTag   uint64
	collect    *Match
	ports      []PortID
	peers      map[PortID]uint32

	workers          int
	steadyInterval   time.Duration
	detectionTimeout time.Duration
	probeRate        float64

	clustering  bool
	learntReuse bool
	counting    bool
	validate    bool
	maxChain    int
	miss        TableMiss

	debounce    int
	stallSweeps int
	flapWindow  int
	flapFlips   int

	backendFlapWindow int
	backendFlapCycles int

	sinks []Sink

	store        Store
	stateDir     string
	recordDir    string
	reconnectMin time.Duration
	reconnectMax time.Duration

	policy     *Policy
	policyFile string
}

// defaultSettings returns the paper-default option values.
func defaultSettings() settings {
	return settings{
		probeField:     VlanID,
		steadyInterval: 2 * time.Second,
		clustering:     true,
		learntReuse:    true,
		validate:       true,
		debounce:       1,
		stallSweeps:    3,
		flapWindow:     6,
		flapFlips:      3,

		backendFlapWindow: 6,
		backendFlapCycles: 3,
	}
}

func (s *settings) apply(opts []Option) {
	for _, o := range opts {
		o(s)
	}
}

// effectiveWorkers resolves the solver-worker budget (0 = all CPUs).
func (s *settings) effectiveWorkers() int {
	if s.workers > 0 {
		return s.workers
	}
	return runtime.GOMAXPROCS(0)
}

// generatorConfig builds the internal probe-engine configuration for one
// switch: the Collect constraint pins the probe tag so a downstream
// catching rule intercepts the probe (strategy 1, §6), and in_port is
// restricted to the switch's real ports.
func (s *settings) generatorConfig(switchID uint32) probe.Config {
	collect := MatchAll()
	tag := s.probeTag
	if tag == 0 {
		tag = uint64(switchID)
	}
	if tag != 0 {
		collect = collect.WithExact(s.probeField, tag)
	}
	if s.collect != nil {
		collect = *s.collect
	}
	domains := header.DefaultDomains()
	if len(s.ports) > 0 {
		vals := make([]uint64, len(s.ports))
		for i, p := range s.ports {
			vals[i] = uint64(p)
		}
		domains[header.InPort] = header.Domain{Values: vals}
	}
	return probe.Config{
		Collect:            collect,
		Domains:            domains,
		ReservedFields:     []header.FieldID{s.probeField},
		Counting:           s.counting,
		MaxChain:           s.maxChain,
		DisableClustering:  !s.clustering,
		DisableLearntReuse: !s.learntReuse,
		ValidateModel:      s.validate,
	}
}

// WithProbeField selects the header field reserved for probe tagging
// (default dl_vlan).
func WithProbeField(f FieldID) Option { return func(s *settings) { s.probeField = f } }

// WithProbeTag pins the probe tag value S_i the switch stamps on its
// probes (the Collect constraint). Zero (the default) uses the switch id.
// The value must fit the probe field's width (12 usable bits for the
// default dl_vlan) and, for Monitor-based deployments, 32 bits; wider
// values are truncated.
func WithProbeTag(v uint64) Option { return func(s *settings) { s.probeTag = v } }

// WithCollect replaces the Collect constraint wholesale (advanced: §6
// strategy-2 style multi-field collection). It overrides
// WithProbeField/WithProbeTag for constraint purposes; the probe field
// stays reserved against rewrites.
func WithCollect(m Match) Option { return func(s *settings) { s.collect = &m } }

// WithPorts restricts probe in_port values to the switch's usable ports.
func WithPorts(ports ...PortID) Option {
	return func(s *settings) { s.ports = append([]PortID(nil), ports...) }
}

// WithPeers maps each switch port to the switch id of the neighbour
// reachable over it (the downstream probe catcher); ports without entries
// are edge ports. Used by NewMonitorConfig; it also implies WithPorts
// (ports sorted ascending, so probe generation stays deterministic no
// matter the map's iteration order).
func WithPeers(peers map[PortID]uint32) Option {
	return func(s *settings) {
		s.peers = make(map[PortID]uint32, len(peers))
		s.ports = s.ports[:0]
		for p, id := range peers {
			s.peers[p] = id
			s.ports = append(s.ports, p)
		}
		sort.Slice(s.ports, func(i, j int) bool { return s.ports[i] < s.ports[j] })
	}
}

// WithWorkers bounds the solver-worker budget a sweep may use; a Fleet
// shards this budget across its member switches. Zero (the default) means
// all CPUs.
func WithWorkers(n int) Option { return func(s *settings) { s.workers = n } }

// WithSteadyInterval sets the cadence of Fleet.Serve steady-state sweeps
// (default 2s).
func WithSteadyInterval(d time.Duration) Option {
	return func(s *settings) { s.steadyInterval = d }
}

// WithDetectionTimeout bounds how long a rule may stay unconfirmed before
// the proxy Monitor raises an alarm (steady state) or reports an update as
// stuck (dynamic). Zero keeps the paper's 150 ms steady-state default and
// disables the dynamic deadline.
func WithDetectionTimeout(d time.Duration) Option {
	return func(s *settings) { s.detectionTimeout = d }
}

// WithProbeRate caps the proxy Monitor's steady-state probing rate in
// probes/second (default 500/s, the paper's experiments).
func WithProbeRate(rate float64) Option { return func(s *settings) { s.probeRate = rate } }

// WithClustering toggles scope-similarity clustering in whole-table
// sweeps (default true; false is the ablation/debug path).
func WithClustering(on bool) Option { return func(s *settings) { s.clustering = on } }

// WithLearntReuse toggles learnt-clause/phase reuse between the rules of a
// sweep cluster (default true; false isolates the shared-prefix
// contribution).
func WithLearntReuse(on bool) Option { return func(s *settings) { s.learntReuse = on } }

// WithCounting enables the probe-counting exception for multicast-vs-ECMP
// distinction (§3.4).
func WithCounting(on bool) Option { return func(s *settings) { s.counting = on } }

// WithModelValidation toggles the post-solve cross-check of every probe
// against the table semantics (default true; cheap and recommended).
func WithModelValidation(on bool) Option { return func(s *settings) { s.validate = on } }

// WithMaxChain bounds the Velev if-then-else chain length before
// splitting; zero keeps the encoder default.
func WithMaxChain(n int) Option { return func(s *settings) { s.maxChain = n } }

// WithTableMiss sets the verifier table's miss behaviour (default
// MissDrop).
func WithTableMiss(miss TableMiss) Option { return func(s *settings) { s.miss = miss } }

// WithDebounce makes the diff engine wait until a rule has been in a bad
// status for n consecutive sweeps before raising AlertRuleFailing
// (default 1: alert on the first bad sweep). Values below 1 are clamped
// to 1.
func WithDebounce(n int) Option {
	return func(s *settings) { s.debounce = max(n, 1) }
}

// WithStallThreshold raises AlertSwitchStalled after a previously-sweeping
// switch contributes no events for n consecutive sweep rounds (default 3).
// Values below 1 are clamped to 1.
func WithStallThreshold(n int) Option {
	return func(s *settings) { s.stallSweeps = max(n, 1) }
}

// WithFlapWindow raises AlertVerdictFlapping when a rule's good/bad state
// flips at least flips times within its last window sweeps (defaults 6
// and 3). Values below 2 (window) and 1 (flips) are clamped.
func WithFlapWindow(window, flips int) Option {
	return func(s *settings) {
		s.flapWindow = max(window, 2)
		s.flapFlips = max(flips, 1)
	}
}

// WithBackendFlapWindow raises AlertBackendFlapping when a switch's
// driver completes at least cycles disconnect/reconnect cycles within its
// last window sweep rounds (defaults 6 and 3). Values below 1 are
// clamped.
func WithBackendFlapWindow(window, cycles int) Option {
	return func(s *settings) {
		s.backendFlapWindow = max(window, 1)
		s.backendFlapCycles = max(cycles, 1)
	}
}

// WithRecordDir makes the Service record every switch's complete backend
// session — calls, verdicts, events, timings — to an append-only trace
// file (switch-<id>.trace) in the given directory (created if needed).
// Traces replay offline through ReplayBackend / cmd/monotrace: a live
// incident recorded once is reproducible forever, with zero network
// access. Recording failures degrade the trace, never the monitoring
// (counted in ServiceMetrics.StoreErrors).
func WithRecordDir(dir string) Option { return func(s *settings) { s.recordDir = dir } }

// WithAlertSink attaches an alert sink to the Service: every sweep round
// that raises alerts delivers them to each attached sink. A *RingSink
// attached here replaces the service's default in-memory ring (and backs
// GET /alerts); other sink types are added alongside it.
func WithAlertSink(sink Sink) Option {
	return func(s *settings) { s.sinks = append(s.sinks, sink) }
}

// WithStore attaches a persistence Store to the Service: switch
// registrations, expected-table snapshots, diff-engine state, and alerts
// are written through it, and Service.Resume restores them after a
// restart. Store write failures never fail the operation that triggered
// them; they are counted in ServiceMetrics.StoreErrors.
func WithStore(st Store) Option { return func(s *settings) { s.store = st } }

// WithStateDir is WithStore with the built-in FileStore opened on the
// given state directory (created if needed). An open failure surfaces on
// the service's first persisted operation as a StoreErrors count, not a
// construction error — a bad disk must not keep the monitor from running.
func WithStateDir(dir string) Option { return func(s *settings) { s.stateDir = dir } }

// WithReconnectBackoff tunes the proxy drivers' reconnect backoff window:
// min is the first redial delay after a switch-side transport failure,
// max caps the exponential growth (defaults 100ms and 15s). Applies to
// backends the Service creates from SwitchSpecs with backend "proxy".
func WithReconnectBackoff(min, max time.Duration) Option {
	return func(s *settings) {
		s.reconnectMin = min
		s.reconnectMax = max
	}
}

// WithPolicy installs a monitoring policy on the Service at construction:
// every switch resolves to a policy group, each group sweeps at its own
// cadence with its own sampling and alerting directives, and GET /policy
// serves the source text. The policy can be swapped live with
// Service.SetPolicy or PUT /policy. An explicit policy takes precedence
// over one persisted in the state directory.
func WithPolicy(p *Policy) Option { return func(s *settings) { s.policy = p } }

// WithPolicyFile is WithPolicy reading the policy text from a file at
// construction. A read or parse failure leaves the service running
// without a policy and is counted in ServiceMetrics.PolicyErrors — like a
// bad state directory, a bad policy file must not keep the monitor from
// running. Validate files first with cmd/monopolicy (or ParsePolicyFile).
func WithPolicyFile(path string) Option { return func(s *settings) { s.policyFile = path } }

// monitorPeers converts the option peer map to the internal type.
func (s *settings) monitorPeers() map[flowtable.PortID]uint32 { return s.peers }
