package monocle_test

// API lock: the exported surface of the public monocle package is pinned
// to api_golden.txt. Any change to exported types, functions, methods,
// constants, or variables fails this test until the golden file is
// regenerated with
//
//	go test -run TestAPILock -update-api .
//
// making API changes deliberate, reviewed work instead of accidents.

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"sort"
	"strings"
	"testing"
)

var updateAPI = flag.Bool("update-api", false, "rewrite api_golden.txt with the current exported surface")

const goldenFile = "api_golden.txt"

func TestAPILock(t *testing.T) {
	got := renderAPI(t)
	if *updateAPI {
		if err := os.WriteFile(goldenFile, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d lines)", goldenFile, strings.Count(got, "\n"))
		return
	}
	want, err := os.ReadFile(goldenFile)
	if err != nil {
		t.Fatalf("reading %s (regenerate with -update-api): %v", goldenFile, err)
	}
	if string(want) == got {
		return
	}
	gotLines := strings.Split(got, "\n")
	wantLines := strings.Split(string(want), "\n")
	seen := make(map[string]bool, len(wantLines))
	for _, l := range wantLines {
		seen[l] = true
	}
	for _, l := range gotLines {
		if l != "" && !seen[l] {
			t.Errorf("added to public API: %s", l)
		}
	}
	seen = make(map[string]bool, len(gotLines))
	for _, l := range gotLines {
		seen[l] = true
	}
	for _, l := range wantLines {
		if l != "" && !seen[l] {
			t.Errorf("removed from public API: %s", l)
		}
	}
	if t.Failed() {
		t.Fatalf("public API surface changed; if intended, regenerate %s with -update-api", goldenFile)
	}
	t.Fatalf("public API surface reordered; regenerate %s with -update-api", goldenFile)
}

// renderAPI parses the root package (non-test files) and renders one line
// per exported symbol, sorted.
func renderAPI(t *testing.T) string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["monocle"]
	if !ok {
		t.Fatalf("root package monocle not found (got %v)", pkgs)
	}

	var lines []string
	add := func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				recv := ""
				if d.Recv != nil && len(d.Recv.List) == 1 {
					rt := exprString(fset, d.Recv.List[0].Type)
					base := strings.TrimPrefix(rt, "*")
					if !ast.IsExported(base) {
						continue
					}
					recv = "(" + rt + ") "
				}
				add("func %s%s%s", recv, d.Name.Name, signatureString(fset, d.Type))
			case *ast.GenDecl:
				switch d.Tok {
				case token.TYPE:
					for _, spec := range d.Specs {
						ts := spec.(*ast.TypeSpec)
						if !ts.Name.IsExported() {
							continue
						}
						eq := ""
						if ts.Assign != token.NoPos {
							eq = "= "
						}
						add("type %s %s%s", ts.Name.Name, eq, exprString(fset, ts.Type))
					}
				case token.CONST, token.VAR:
					kind := "const"
					if d.Tok == token.VAR {
						kind = "var"
					}
					for _, spec := range d.Specs {
						vs := spec.(*ast.ValueSpec)
						for _, name := range vs.Names {
							if name.IsExported() {
								add("%s %s", kind, name.Name)
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

// signatureString renders a function type's parameter/result lists.
func signatureString(fset *token.FileSet, ft *ast.FuncType) string {
	s := exprString(fset, ft)
	return strings.TrimPrefix(s, "func")
}

func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return fmt.Sprintf("<%v>", err)
	}
	return buf.String()
}
