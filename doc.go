// Package monocle is the public API of the Monocle data plane verifier
// (Peresini, Kuzniar, Kostic: "Monocle: Dynamic, Fine-Grained Data Plane
// Monitoring", CoNEXT 2015). It wraps the internal SAT-based probe engine,
// the per-switch proxy Monitor, and the multi-switch sweep service behind
// one importable package; the internal/ packages underneath are private
// implementation detail and may change without notice.
//
// The entry points are:
//
//   - Verifier: single-switch verification. Compile a flow table once,
//     generate a probe for any rule (steady-state monitoring), and build
//     dynamic-update confirmation probes for additions, modifications and
//     deletions. Generation is incremental: repeated probes and sweeps
//     reuse the compiled table library, and table changes recompile only
//     the changed rules.
//
//   - Fleet: multi-switch deployment. Fleet shards its member switches
//     across a bounded solver-worker budget, runs concurrent steady-state
//     sweeps (each switch through its own Verifier session cache), and
//     streams ProbeResult events over a context-aware channel. Members
//     pair a Verifier with a Backend driver (AddBackend), attach
//     self-sweeping drivers (AttachBackend), or host raw proxy Monitors
//     wired through one shared Multiplexer (AttachMonitor).
//
//   - Backend: the switch-driver seam — connect/close the transport,
//     apply rule operations to the data plane, inject and observe probes,
//     and watch lifecycle events. SimBackend drives an in-memory simulated
//     data plane; ProxyBackend is the paper's live deployment, a TCP
//     OpenFlow 1.0 proxy whose Monitor intercepts the controller-switch
//     session (share an event loop and probe routing between backends
//     with a ProxyGroup). Everything above the seam is driver-agnostic.
//
//   - ObserveBatch: the batched probe dataplane. Backends implementing
//     the optional BatchObserver extension observe N probes per call —
//     one marshal loop over pooled zero-alloc packet buffers, one
//     event-loop post, and a rate-paced in-flight window of pipelined
//     wire observations (ProxyConfig.ObserveWindow / ObserveRate) in
//     place of inject→wait→inject. The package-level ObserveBatch
//     helper falls back to sequential Observe for plain Backends;
//     verdicts are bit-identical either way. Fleet sweeps and
//     Service.SweepRound route through it (BENCH_probe.json records
//     the throughput delta).
//
//   - Service: the long-running monocled fleet service. A Fleet of
//     Backends, the cross-epoch diff engine (Differ) folding every sweep
//     round into typed debounced Alerts, and pluggable alert delivery
//     (Sink: RingSink, LogSink, WebhookSink via WithAlertSink) behind a
//     net/http control surface with JSON and Prometheus metrics.
//
//   - Monitoring policies: a declarative DSL (ParsePolicy /
//     ParsePolicyFile, installed via WithPolicy, WithPolicyFile,
//     Service.SetPolicy, or PUT /policy) that groups switches by tag or
//     ID and sets per-group sweep cadences, confirmation deadlines,
//     seeded rule sampling, Differ threshold overrides, and alert
//     filters. Policies compile against the live fleet into
//     deterministic per-switch ProbePlans (Service.ProbePlans,
//     Policy.Plan) — byte-identical across worker budgets — and
//     Service.Run sweeps each group at its own cadence. cmd/monopolicy
//     checks and explains policies offline.
//
//   - Record/replay: WithRecordDir wraps every switch backend in a
//     RecordBackend capturing the whole session — calls, verdicts,
//     events, epochs — to an append-only trace (CreateTrace /
//     ReadTraceFile); ReplayBackend (SwitchSpec backend "replay", or
//     cmd/monotrace) re-serves a trace deterministically with zero
//     network, failing loudly with a DivergenceError when the replayed
//     session departs from the recording.
//
//   - Cluster: the sharded control plane. A Coordinator (NewCoordinator,
//     ClusterConfig) fronts N monocled replicas, assigns every switch to
//     a replica by rendezvous hashing on its id (ShardMap), routes
//     registrations and rule ops to the owning shard, fans policy
//     updates and sweeps out fleet-wide, and merges the per-replica
//     alert and sweep streams into one deterministic global order —
//     byte-identical to a standalone monocled for a single replica, and
//     across any replica count for the same fleet. Replica failure
//     degrades exactly one shard (ClusterHealth names it); a replica
//     restarted from its state directory rejoins via Resume with no
//     false recoveries. cmd/monocluster spawns or joins the replicas.
//
//   - Scenarios: the adversarial scenario fleet. Scenarios() scripts
//     rule-churn storms, mid-sweep switch flaps, monitor failover,
//     lossy switches, ECMP/multicast tables, and priority shadowing
//     against live TCP switches (StartSwitchServer, the in-process
//     OpenFlow 1.0 testbed switch), each declaring its exact alert
//     sequence and behaving identically across worker budgets.
//
// Quickstart — verify one rule and sweep an 8-switch fleet:
//
//	v, _ := monocle.NewVerifier(monocle.WithProbeTag(1))
//	rule := &monocle.Rule{ID: 1, Priority: 10,
//		Match:   monocle.MatchAll().WithExact(monocle.IPSrc, 10<<24|1),
//		Actions: []monocle.Action{monocle.Output(2)},
//	}
//	p, _ := v.Add(rule) // dynamic-update confirmation probe
//	// inject p.Header; observing p.Present confirms the installation:
//	verdict := monocle.Judge(p, observedPort, observedHeader)
//
//	fleet := monocle.NewFleet(monocle.WithWorkers(8))
//	for id := uint32(1); id <= 8; id++ {
//		sw, _ := fleet.AddSwitch(id)
//		sw.Install(rulesOf(id)...)
//	}
//	for ev := range fleet.Stream(ctx) {
//		fmt.Println(ev.Record()) // one JSON-able record per rule
//	}
//
// The facade re-exports the vocabulary types callers genuinely need (Rule,
// Match, Header, Probe, Verdict, statistics), the proxy Monitor layer used
// by transport integrations such as cmd/monocle, the OpenFlow 1.0 wire
// codec, the simulated testbed, and the paper's experiment harnesses. The
// exported surface is locked by an API golden file (api_golden.txt) —
// changing it is deliberate, reviewed work, not an accident.
package monocle
