package monocle

// Probe-engine surface: the generated probe packets, their outcomes, the
// per-rule sweep results, solver statistics, and the verdict logic that
// turns an observation into a confirmation.

import (
	imon "monocle/internal/monocle"
	"monocle/internal/probe"
)

// Probe is a generated monitoring packet together with the two data plane
// outcomes it discriminates between (rule present / rule absent).
type Probe = probe.Probe

// Outcome describes what the data plane does to a probe under one of the
// two hypotheses.
type Outcome = probe.Outcome

// ProbeStats captures per-probe generation metrics (instance size and
// solver effort).
type ProbeStats = probe.Stats

// ProbeResult is the outcome of generating a probe for one rule of a
// table: the rule, the probe (nil on error), and the error, if any.
type ProbeResult = probe.Result

// WorkerStats aggregates one sweep worker's solver effort
// (decisions/propagations/conflicts and the cluster/rule split).
type WorkerStats = probe.WorkerStats

// CacheStats counts session-cache activity across table epochs (hits,
// delta recompiles, full rebuilds).
type CacheStats = probe.CacheStats

// Probe generation errors.
var (
	// ErrUnmonitorable reports that no probe packet can distinguish the
	// rule's presence (hidden by higher-priority rules, or no observable
	// behaviour change — §3.5 of the paper).
	ErrUnmonitorable = probe.ErrUnmonitorable
	// ErrRewritesProbeField reports a rule rewriting a reserved probing
	// field, which would break probe collection (§3.2).
	ErrRewritesProbeField = probe.ErrRewritesProbeField
)

// Verdict classifies one probe observation against the probe's expected
// outcomes.
type Verdict = imon.Verdict

// Verdict values.
const (
	// VerdictConfirmed: the observation matches the Present outcome.
	VerdictConfirmed = imon.VerdictConfirmed
	// VerdictAbsent: the observation matches the Absent outcome (rule
	// missing, or a deletion that took effect).
	VerdictAbsent = imon.VerdictAbsent
	// VerdictUnexpected: the observation matches neither outcome (rule
	// misbehaving, or a stale probe).
	VerdictUnexpected = imon.VerdictUnexpected
)

// Judge classifies an observed (port, header) pair against a probe's two
// outcomes. For additions and modifications, VerdictConfirmed means the
// update reached the data plane; for deletions, VerdictAbsent does (the
// probe fell through to the underlying rule). VerdictUnexpected means the
// observation matches neither hypothesis.
func Judge(p *Probe, port PortID, obs Header) Verdict {
	// The ingress port of the observing switch is not part of the
	// emitted packet: compare with in_port masked on both sides, as the
	// proxy Monitor does.
	obs.Set(InPort, 0)
	matchesPresent := outcomeMatches(p.Present, port, obs)
	matchesAbsent := outcomeMatches(p.Absent, port, obs)
	switch {
	case matchesPresent && !matchesAbsent:
		return VerdictConfirmed
	case matchesAbsent && !matchesPresent:
		return VerdictAbsent
	default:
		return VerdictUnexpected
	}
}

// outcomeMatches checks one (port, header) observation against an expected
// outcome, ignoring in_port.
func outcomeMatches(o Outcome, port PortID, obs Header) bool {
	if o.Drop {
		return false
	}
	for _, e := range o.Emissions {
		if e.Port != port {
			continue
		}
		want := e.Header
		want.Set(InPort, 0)
		if want == obs {
			return true
		}
	}
	return false
}
