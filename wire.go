package monocle

// OpenFlow 1.0 wire-protocol re-exports: the message types and codec that
// transport integrations (TCP proxies, the simulated testbed) speak, and
// the converters between wire structures and the facade's Match/Action
// model.

import (
	"io"

	"monocle/internal/openflow"
)

// Message is one OpenFlow 1.0 protocol message.
type Message = openflow.Message

// FlowMod installs, modifies, or deletes a flow table entry.
type FlowMod = openflow.FlowMod

// PacketIn delivers a data plane packet to the controller.
type PacketIn = openflow.PacketIn

// PacketOut injects a packet into the switch's data plane.
type PacketOut = openflow.PacketOut

// BarrierRequest asks the switch to finish all preceding operations.
type BarrierRequest = openflow.BarrierRequest

// BarrierReply acknowledges a BarrierRequest.
type BarrierReply = openflow.BarrierReply

// EchoRequest is the OpenFlow keepalive probe.
type EchoRequest = openflow.EchoRequest

// EchoReply answers an EchoRequest.
type EchoReply = openflow.EchoReply

// WireMatch is the fixed-layout OpenFlow 1.0 match structure.
type WireMatch = openflow.WireMatch

// WireAction is one wire-encoded OpenFlow 1.0 action.
type WireAction = openflow.Action

// FlowMod commands.
const (
	FCAdd          = openflow.FCAdd
	FCModify       = openflow.FCModify
	FCModifyStrict = openflow.FCModifyStrict
	FCDelete       = openflow.FCDelete
	FCDeleteStrict = openflow.FCDeleteStrict
)

// PacketIn reasons.
const (
	// ReasonNoMatch marks a PacketIn punted by a table miss.
	ReasonNoMatch = openflow.ReasonNoMatch
	// ReasonAction marks a PacketIn produced by an output-to-controller
	// action (how caught probes surface).
	ReasonAction = openflow.ReasonAction
)

// Wire-protocol sentinels.
const (
	// BufferNone marks a PacketOut/FlowMod carrying its own payload.
	BufferNone = openflow.BufferNone
	// PortNone is the "no port" wildcard in FlowMod delete filters.
	PortNone = openflow.PortNone
	// PortTable makes a PacketOut traverse the flow table like a data
	// packet (how Monocle injects probes, §8.3.1).
	PortTable = openflow.PortTable
)

// OutputAction returns the wire action emitting the packet on port.
func OutputAction(port uint16) WireAction { return openflow.OutputAction(port) }

// FromMatch converts a facade Match to the wire structure. Only
// OpenFlow 1.0-expressible matches convert (prefixes on nw_src/nw_dst,
// exact values elsewhere).
func FromMatch(m Match) (WireMatch, error) { return openflow.FromMatch(m) }

// FromActions converts facade actions to wire actions.
func FromActions(actions []Action) ([]WireAction, error) { return openflow.FromActions(actions) }

// ToActions converts wire actions to facade actions.
func ToActions(actions []WireAction) ([]Action, error) { return openflow.ToActions(actions) }

// WriteMessage frames and writes one message.
func WriteMessage(w io.Writer, msg Message, xid uint32) error {
	return openflow.WriteMessage(w, msg, xid)
}

// ReadMessage reads exactly one framed message.
func ReadMessage(r io.Reader) (Message, uint32, error) { return openflow.ReadMessage(r) }
