package monocle

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"time"

	"monocle/internal/cluster"
)

// ReplicaSpec names one monocled replica behind a cluster coordinator.
type ReplicaSpec struct {
	// Name is the replica's stable shard identity. Rendezvous hashing
	// assigns switches to names, not addresses, so a replica may restart
	// on a new port (or host) and keep its shard as long as the name and
	// the state directory survive.
	Name string `json:"name"`
	// URL is the replica's base HTTP URL (e.g. "http://10.0.0.7:7771").
	URL string `json:"url"`
}

// ClusterConfig configures a Coordinator.
type ClusterConfig struct {
	// Replicas is the static cluster membership. Names must be unique and
	// non-empty; the set is fixed for the coordinator's lifetime.
	Replicas []ReplicaSpec
	// Client is the HTTP client used to reach replicas (default: a client
	// with a 10s timeout).
	Client *http.Client
	// CheckInterval is the background health-check cadence of Run
	// (default 2s).
	CheckInterval time.Duration
}

// ReplicaHealth is one replica's slice of the cluster health view.
type ReplicaHealth struct {
	Name string `json:"name"`
	URL  string `json:"url"`
	// Alive reports the replica answered its last health probe at all.
	Alive bool `json:"alive"`
	// Ready reports the replica passed GET /readyz: its WAL replay is
	// done and the first sweep round of this process life has completed.
	Ready bool `json:"ready"`
	// Resuming/Draining mirror the replica's readyz detail when alive.
	Resuming bool `json:"resuming,omitempty"`
	Draining bool `json:"draining,omitempty"`
	// Rounds and Switches are the replica's own counters.
	Rounds   uint64 `json:"rounds"`
	Switches int    `json:"switches"`
	// Error is the probe failure when the replica is not alive.
	Error string `json:"error,omitempty"`
}

// ClusterHealth is the coordinator's GET /healthz payload: the fleet-wide
// view across every replica.
type ClusterHealth struct {
	// OK reports every replica answered its probe.
	OK bool `json:"ok"`
	// Ready reports every replica is routable (alive and ready).
	Ready bool `json:"ready"`
	// Replicas holds the per-replica detail in membership order.
	Replicas []ReplicaHealth `json:"replicas"`
	// Degraded names the shards that are currently not routable, sorted.
	// A degraded shard's switches are unmonitored until the replica comes
	// back (same name, same state dir) and finishes its Resume.
	Degraded []string `json:"degraded,omitempty"`
}

// ShardMap is the cluster's switch-to-replica assignment.
type ShardMap struct {
	// Replicas is the membership the assignment is computed over.
	Replicas []string `json:"replicas"`
	// Switches maps the currently registered switch ids to their owning
	// replica name (populated by GET /shards from live fan-in; empty in a
	// freshly built map).
	Switches map[uint32]string `json:"switches,omitempty"`
	// Degraded names replicas that did not answer the fan-in.
	Degraded []string `json:"degraded,omitempty"`
}

// Owner returns the replica name that owns switch id under the map's
// membership (rendezvous hashing; deterministic for a given membership).
func (m ShardMap) Owner(id uint32) string { return cluster.Owner(m.Replicas, id) }

// ReplicaMetrics is one replica's slice of ClusterMetrics.
type ReplicaMetrics struct {
	Name  string `json:"name"`
	URL   string `json:"url"`
	Alive bool   `json:"alive"`
	Error string `json:"error,omitempty"`
	// Metrics is the replica's own GET /metrics payload when alive.
	Metrics *ServiceMetrics `json:"metrics,omitempty"`
}

// ClusterMetrics is the coordinator's GET /metrics payload: cluster
// rollups plus the per-replica detail.
type ClusterMetrics struct {
	// Rounds is the maximum replica round counter. Coordinated sweeps
	// advance every replica in lockstep, so under POST /sweep fan-out the
	// counters agree; cadence-driven replicas may briefly diverge.
	Rounds uint64 `json:"rounds"`
	// RulesSwept, AlertsTotal, SinkErrors, StoreErrors and PolicyErrors
	// are summed across replicas.
	RulesSwept   uint64            `json:"rules_swept"`
	AlertsTotal  uint64            `json:"alerts_total"`
	AlertsByType map[string]uint64 `json:"alerts_by_type,omitempty"`
	SinkErrors   uint64            `json:"sink_errors,omitempty"`
	StoreErrors  uint64            `json:"store_errors,omitempty"`
	PolicyErrors uint64            `json:"policy_errors,omitempty"`
	// Switches is the total registered switch count across replicas.
	Switches int `json:"switches"`
	// Replicas holds the per-replica payloads in membership order.
	Replicas []ReplicaMetrics `json:"replicas"`
	// Degraded names replicas that did not answer the fan-in, sorted.
	Degraded []string `json:"degraded,omitempty"`
}

// Coordinator fronts N monocled replicas as one fleet: it owns the
// switch-to-replica shard map (rendezvous hashing on switch id), routes
// registrations and rule ops to the owning replica, fans policy updates
// and sweeps out to every replica, and merges the per-replica alert and
// sweep streams back into one deterministic global order.
//
// The aggregated surface mirrors a single monocled's HTTP API: a client
// pointed at a coordinator sees the same endpoints and — for a
// single-replica cluster — byte-identical streams. See Handler for the
// routes and doc.go for the cluster topology story.
type Coordinator struct {
	replicas []ReplicaSpec
	names    []string
	byName   map[string]ReplicaSpec
	client   *http.Client
	interval time.Duration

	mu     sync.Mutex
	health map[string]ReplicaHealth
}

// NewCoordinator validates the membership and returns a coordinator.
// Replica names must be unique and non-empty, URLs must parse absolute.
func NewCoordinator(cfg ClusterConfig) (*Coordinator, error) {
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("monocle: cluster needs at least one replica")
	}
	byName := make(map[string]ReplicaSpec, len(cfg.Replicas))
	names := make([]string, 0, len(cfg.Replicas))
	for _, rep := range cfg.Replicas {
		if rep.Name == "" {
			return nil, errors.New("monocle: replica with empty name")
		}
		if _, dup := byName[rep.Name]; dup {
			return nil, fmt.Errorf("monocle: duplicate replica name %q", rep.Name)
		}
		u, err := url.Parse(rep.URL)
		if err != nil || !u.IsAbs() || u.Host == "" {
			return nil, fmt.Errorf("monocle: replica %q: bad URL %q", rep.Name, rep.URL)
		}
		byName[rep.Name] = rep
		names = append(names, rep.Name)
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	interval := cfg.CheckInterval
	if interval <= 0 {
		interval = 2 * time.Second
	}
	return &Coordinator{
		replicas: append([]ReplicaSpec(nil), cfg.Replicas...),
		names:    names,
		byName:   byName,
		client:   client,
		interval: interval,
		health:   make(map[string]ReplicaHealth),
	}, nil
}

// Owner returns the replica that owns switch id under the current
// membership.
func (c *Coordinator) Owner(id uint32) ReplicaSpec {
	return c.byName[cluster.Owner(c.names, id)]
}

// ShardMap returns the membership's shard map (Switches unset; the
// GET /shards endpoint populates it from a live fan-in).
func (c *Coordinator) ShardMap() ShardMap {
	return ShardMap{Replicas: append([]string(nil), c.names...)}
}

// Run health-checks every replica each CheckInterval until ctx is done,
// keeping the cached health view (served to callers that want a recent
// snapshot without a probe) fresh. It always returns nil; cancelling ctx
// is the normal shutdown.
func (c *Coordinator) Run(ctx context.Context) error {
	ticker := time.NewTicker(c.interval)
	defer ticker.Stop()
	c.Health(ctx)
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-ticker.C:
			c.Health(ctx)
		}
	}
}

// Close releases the coordinator's idle replica connections. It is safe
// to call more than once.
func (c *Coordinator) Close() error {
	c.client.CloseIdleConnections()
	return nil
}

// Health probes every replica now and returns the fleet view. The result
// is also cached for LastHealth.
func (c *Coordinator) Health(ctx context.Context) ClusterHealth {
	results := make([]ReplicaHealth, len(c.replicas))
	var wg sync.WaitGroup
	for i, rep := range c.replicas {
		wg.Add(1)
		go func(i int, rep ReplicaSpec) {
			defer wg.Done()
			results[i] = c.probe(ctx, rep)
		}(i, rep)
	}
	wg.Wait()
	out := ClusterHealth{OK: true, Ready: true, Replicas: results}
	c.mu.Lock()
	for _, h := range results {
		c.health[h.Name] = h
		if !h.Alive {
			out.OK = false
		}
		if !h.Alive || !h.Ready {
			out.Ready = false
			out.Degraded = append(out.Degraded, h.Name)
		}
	}
	c.mu.Unlock()
	sort.Strings(out.Degraded)
	return out
}

// LastHealth returns the most recent cached health view without probing
// (zero-valued entries before the first probe of a replica).
func (c *Coordinator) LastHealth() ClusterHealth {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := ClusterHealth{OK: true, Ready: true}
	for _, rep := range c.replicas {
		h, ok := c.health[rep.Name]
		if !ok {
			h = ReplicaHealth{Name: rep.Name, URL: rep.URL}
		}
		out.Replicas = append(out.Replicas, h)
		if !h.Alive {
			out.OK = false
		}
		if !h.Alive || !h.Ready {
			out.Ready = false
			out.Degraded = append(out.Degraded, h.Name)
		}
	}
	sort.Strings(out.Degraded)
	return out
}

// probe asks one replica's /readyz and folds the answer into a
// ReplicaHealth. Any transport error means not alive (and therefore a
// degraded shard); a 503 means alive but not routable yet.
func (c *Coordinator) probe(ctx context.Context, rep ReplicaSpec) ReplicaHealth {
	h := ReplicaHealth{Name: rep.Name, URL: rep.URL}
	body, status, err := c.call(ctx, rep, http.MethodGet, "/readyz", "", nil)
	if err != nil {
		h.Error = err.Error()
		return h
	}
	var detail struct {
		Ready    bool   `json:"ready"`
		Resuming bool   `json:"resuming"`
		Draining bool   `json:"draining"`
		Rounds   uint64 `json:"rounds"`
		Switches int    `json:"switches"`
	}
	if err := json.Unmarshal(body, &detail); err != nil {
		h.Error = fmt.Sprintf("bad readyz body: %v", err)
		return h
	}
	h.Alive = true
	h.Ready = status == http.StatusOK && detail.Ready
	h.Resuming = detail.Resuming
	h.Draining = detail.Draining
	h.Rounds = detail.Rounds
	h.Switches = detail.Switches
	return h
}

// call performs one replica request and returns the full response body
// and status. Transport errors (replica down) come back as err; HTTP
// error statuses do not.
func (c *Coordinator) call(ctx context.Context, rep ReplicaSpec, method, path, contentType string, body []byte) ([]byte, int, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, rep.URL+path, rd)
	if err != nil {
		return nil, 0, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, 0, err
	}
	return b, resp.StatusCode, nil
}

// errShardDegraded marks a routing failure: the owning replica is down or
// not ready, so the op cannot be applied without losing it.
type errShardDegraded struct {
	shard  string
	reason string
}

func (e errShardDegraded) Error() string {
	return fmt.Sprintf("shard %s degraded: %s", e.shard, e.reason)
}

// requireRoutable synchronously re-probes one replica and returns an
// errShardDegraded unless the replica can safely accept routed ops: it
// answers, it is not mid-Resume (WAL replay), and it is not draining.
// Note this is deliberately weaker than full /readyz readiness — a fresh
// replica has not finished its first round yet, but it must accept the
// switch registrations that make the first round possible.
func (c *Coordinator) requireRoutable(ctx context.Context, rep ReplicaSpec) error {
	h := c.probe(ctx, rep)
	c.mu.Lock()
	c.health[h.Name] = h
	c.mu.Unlock()
	switch {
	case !h.Alive:
		return errShardDegraded{shard: rep.Name, reason: h.Error}
	case h.Resuming:
		return errShardDegraded{shard: rep.Name, reason: "resuming (WAL replay in progress)"}
	case h.Draining:
		return errShardDegraded{shard: rep.Name, reason: "draining"}
	}
	return nil
}

// Handler returns the coordinator's aggregated HTTP surface — the same
// routes a single monocled serves, re-exposed fleet-wide:
//
//	POST /switches             route the registration to the owning shard
//	GET  /switches             fan-in, merged ascending by switch id
//	POST /switches/{id}/rules  route the rule op to the owning shard
//	POST /sweep                fan-out to every shard, aggregate reply
//	GET  /policy               active policy source (from the first live shard)
//	PUT  /policy               validate, then fan-out to every shard
//	GET  /sweeps               per-replica streams merged by switch id
//	GET  /alerts               merged by (round, switch, rule, seq), seq
//	                           renumbered along the merged global order
//	GET  /metrics              cluster rollups + replica-labelled series
//	                           (JSON; Prometheus text via Accept)
//	GET  /healthz              ClusterHealth (always 200, body carries state)
//	GET  /livez                coordinator process liveness
//	GET  /readyz               200 only when every shard is routable
//	GET  /shards               live shard map (switch id -> replica name)
//
// Fan-in reads tolerate dead replicas: the response carries the merged
// view of the live shards and an X-Monocle-Degraded header naming the
// missing ones. Mutating ops are gated on the owning shard's readiness
// and fail 503 with the shard name instead of silently dropping work.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /switches", c.handleAddSwitch)
	mux.HandleFunc("GET /switches", c.handleListSwitches)
	mux.HandleFunc("POST /switches/{id}/rules", c.handleRules)
	mux.HandleFunc("POST /sweep", c.handleSweep)
	mux.HandleFunc("GET /policy", c.handleGetPolicy)
	mux.HandleFunc("PUT /policy", c.handlePutPolicy)
	mux.HandleFunc("GET /sweeps", c.handleSweeps)
	mux.HandleFunc("GET /alerts", c.handleAlerts)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /livez", c.handleLivez)
	mux.HandleFunc("GET /readyz", c.handleReadyz)
	mux.HandleFunc("GET /shards", c.handleShards)
	return mux
}

func (c *Coordinator) degradedError(w http.ResponseWriter, err error) {
	var deg errShardDegraded
	if errors.As(err, &deg) {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error": deg.Error(), "shard": deg.shard, "degraded": true,
		})
		return
	}
	httpError(w, http.StatusBadGateway, err)
}

// relay copies a replica response (status and body) to the client.
func relay(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

func (c *Coordinator) handleAddSwitch(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	var peek struct {
		ID uint32 `json:"id"`
	}
	if err := json.Unmarshal(body, &peek); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	owner := c.Owner(peek.ID)
	if err := c.requireRoutable(r.Context(), owner); err != nil {
		c.degradedError(w, err)
		return
	}
	resp, status, err := c.call(r.Context(), owner, http.MethodPost, "/switches", "application/json", body)
	if err != nil {
		c.degradedError(w, errShardDegraded{shard: owner.Name, reason: err.Error()})
		return
	}
	relay(w, status, resp)
}

func (c *Coordinator) handleRules(w http.ResponseWriter, r *http.Request) {
	id64, err := strconv.ParseUint(r.PathValue("id"), 10, 32)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad switch id: %w", err))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	owner := c.Owner(uint32(id64))
	if err := c.requireRoutable(r.Context(), owner); err != nil {
		c.degradedError(w, err)
		return
	}
	resp, status, err := c.call(r.Context(), owner, http.MethodPost, "/switches/"+r.PathValue("id")+"/rules", "application/json", body)
	if err != nil {
		c.degradedError(w, errShardDegraded{shard: owner.Name, reason: err.Error()})
		return
	}
	relay(w, status, resp)
}

// fanIn performs one GET against every replica concurrently and returns
// the bodies in membership order (nil body for a failed replica) plus the
// sorted names of the replicas that failed.
func (c *Coordinator) fanIn(ctx context.Context, path string) (bodies [][]byte, degraded []string) {
	bodies = make([][]byte, len(c.replicas))
	errs := make([]error, len(c.replicas))
	var wg sync.WaitGroup
	for i, rep := range c.replicas {
		wg.Add(1)
		go func(i int, rep ReplicaSpec) {
			defer wg.Done()
			body, status, err := c.call(ctx, rep, http.MethodGet, path, "", nil)
			if err == nil && status != http.StatusOK {
				err = fmt.Errorf("replica %s: %s returned %d", rep.Name, path, status)
			}
			if err != nil {
				errs[i] = err
				return
			}
			bodies[i] = body
		}(i, rep)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			degraded = append(degraded, c.replicas[i].Name)
		}
	}
	sort.Strings(degraded)
	return bodies, degraded
}

func markDegraded(w http.ResponseWriter, degraded []string) {
	if len(degraded) > 0 {
		w.Header().Set("X-Monocle-Degraded", joinNames(degraded))
	}
}

func joinNames(names []string) string {
	var b bytes.Buffer
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
	}
	return b.String()
}

func (c *Coordinator) handleListSwitches(w http.ResponseWriter, r *http.Request) {
	bodies, degraded := c.fanIn(r.Context(), "/switches")
	var merged []SwitchMetrics
	for _, body := range bodies {
		if body == nil {
			continue
		}
		var part []SwitchMetrics
		if err := json.Unmarshal(body, &part); err != nil {
			httpError(w, http.StatusBadGateway, err)
			return
		}
		merged = append(merged, part...)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].Switch < merged[j].Switch })
	markDegraded(w, degraded)
	writeJSON(w, http.StatusOK, merged)
}

func (c *Coordinator) handleSweep(w http.ResponseWriter, r *http.Request) {
	// A partial sweep would silently skip a shard's switches, so the whole
	// fleet must be routable before any replica sweeps.
	for _, rep := range c.replicas {
		if err := c.requireRoutable(r.Context(), rep); err != nil {
			c.degradedError(w, err)
			return
		}
	}
	path := "/sweep"
	if r.URL.RawQuery != "" {
		path += "?" + r.URL.RawQuery
	}
	type sweepReply struct {
		Round  uint64  `json:"round"`
		Rules  int     `json:"rules"`
		Alerts []Alert `json:"alerts"`
	}
	replies := make([]*sweepReply, len(c.replicas))
	errs := make([]error, len(c.replicas))
	var wg sync.WaitGroup
	for i, rep := range c.replicas {
		wg.Add(1)
		go func(i int, rep ReplicaSpec) {
			defer wg.Done()
			body, status, err := c.call(r.Context(), rep, http.MethodPost, path, "", nil)
			if err == nil && status != http.StatusOK {
				err = fmt.Errorf("replica %s: sweep returned %d: %s", rep.Name, status, body)
			}
			if err != nil {
				errs[i] = err
				return
			}
			var sr sweepReply
			if err := json.Unmarshal(body, &sr); err != nil {
				errs[i] = err
				return
			}
			replies[i] = &sr
		}(i, rep)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			c.degradedError(w, errShardDegraded{shard: c.replicas[i].Name, reason: err.Error()})
			return
		}
	}
	var out sweepReply
	var merged []Alert
	for _, rep := range replies {
		if rep.Round > out.Round {
			out.Round = rep.Round
		}
		out.Rules += rep.Rules
		merged = append(merged, rep.Alerts...)
	}
	sortAlerts(merged)
	writeJSON(w, http.StatusOK, map[string]any{
		"round": out.Round, "rules": out.Rules, "alerts": merged,
	})
}

func (c *Coordinator) handleGetPolicy(w http.ResponseWriter, r *http.Request) {
	for _, rep := range c.replicas {
		body, status, err := c.call(r.Context(), rep, http.MethodGet, "/policy", "", nil)
		if err != nil {
			continue
		}
		if status == http.StatusOK {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.Write(body)
			return
		}
		relay(w, status, body)
		return
	}
	httpError(w, http.StatusServiceUnavailable, errors.New("no live replica"))
}

func (c *Coordinator) handlePutPolicy(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	// Validate locally first: a policy that does not parse must not reach
	// any replica, or shards would diverge on which policy is active.
	if len(bytes.TrimSpace(body)) > 0 {
		if _, err := ParsePolicy(string(body)); err != nil {
			var perr *PolicyError
			if errors.As(err, &perr) {
				writeJSON(w, http.StatusUnprocessableEntity, map[string]any{
					"error": perr.Error(), "line": perr.Line, "column": perr.Col,
				})
			} else {
				httpError(w, http.StatusUnprocessableEntity, err)
			}
			return
		}
	}
	for _, rep := range c.replicas {
		if err := c.requireRoutable(r.Context(), rep); err != nil {
			c.degradedError(w, err)
			return
		}
	}
	type putReply struct {
		Groups      []string            `json:"groups"`
		Assignments map[string][]uint32 `json:"assignments"`
	}
	var groups []string
	mergedAsn := make(map[string][]uint32)
	cleared := len(bytes.TrimSpace(body)) == 0
	for _, rep := range c.replicas {
		resp, status, err := c.call(r.Context(), rep, http.MethodPut, "/policy", "text/plain", body)
		if err != nil || status != http.StatusOK {
			if err == nil {
				err = fmt.Errorf("replica %s: policy update returned %d: %s", rep.Name, status, resp)
			}
			c.degradedError(w, errShardDegraded{shard: rep.Name, reason: err.Error()})
			return
		}
		if cleared {
			continue
		}
		var pr putReply
		if err := json.Unmarshal(resp, &pr); err != nil {
			httpError(w, http.StatusBadGateway, err)
			return
		}
		groups = pr.Groups
		for g, ids := range pr.Assignments {
			mergedAsn[g] = append(mergedAsn[g], ids...)
		}
	}
	if cleared {
		writeJSON(w, http.StatusOK, map[string]any{"policy": nil})
		return
	}
	for g := range mergedAsn {
		sort.Slice(mergedAsn[g], func(i, j int) bool { return mergedAsn[g][i] < mergedAsn[g][j] })
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"groups": groups, "assignments": mergedAsn,
	})
}

// sortAlerts orders a merged alert slice by the global stream order
// (round, switch, rule, per-replica seq). Switch ownership is disjoint
// across replicas, so the order is total; within one replica's alerts it
// matches the replica's own emission order.
func sortAlerts(alerts []Alert) {
	sort.SliceStable(alerts, func(i, j int) bool {
		a, b := alerts[i], alerts[j]
		ka := cluster.Key{Round: a.Round, Switch: a.SwitchID, Rule: a.Rule, Seq: a.Seq}
		kb := cluster.Key{Round: b.Round, Switch: b.SwitchID, Rule: b.Rule, Seq: b.Seq}
		return ka.Less(kb)
	})
}

func (c *Coordinator) handleAlerts(w http.ResponseWriter, r *http.Request) {
	bodies, degraded := c.fanIn(r.Context(), "/alerts")
	var merged []Alert
	for _, body := range bodies {
		if body == nil {
			continue
		}
		sc := bufio.NewScanner(bytes.NewReader(body))
		sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			var a Alert
			if err := json.Unmarshal(line, &a); err != nil {
				httpError(w, http.StatusBadGateway, err)
				return
			}
			merged = append(merged, a)
		}
	}
	sortAlerts(merged)
	// Renumber Seq along the merged global order: per-replica sequence
	// numbers depend on how the fleet is sharded, so the aggregated
	// stream re-stamps them 1..N to be byte-identical for every replica
	// count (a single-replica merge is the identity renumbering as long
	// as the replica's retained history has not wrapped its ring).
	for i := range merged {
		merged[i].Seq = uint64(i + 1)
	}
	markDegraded(w, degraded)
	writeJSONLines(w, len(merged), func(enc *json.Encoder, i int) error {
		return enc.Encode(merged[i])
	})
}

func (c *Coordinator) handleSweeps(w http.ResponseWriter, r *http.Request) {
	bodies, degraded := c.fanIn(r.Context(), "/sweeps")
	// Sweep records pass through as raw lines: switch ownership is
	// disjoint and each replica emits its switches in ascending id order,
	// so a stable merge on the peeked switch id reproduces the standalone
	// byte stream exactly.
	type rawLine struct {
		sw   uint32
		line []byte
	}
	var lines []rawLine
	for _, body := range bodies {
		if body == nil {
			continue
		}
		sc := bufio.NewScanner(bytes.NewReader(body))
		sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
		for sc.Scan() {
			line := sc.Bytes()
			if len(bytes.TrimSpace(line)) == 0 {
				continue
			}
			var peek struct {
				Switch uint32 `json:"switch"`
			}
			if err := json.Unmarshal(line, &peek); err != nil {
				httpError(w, http.StatusBadGateway, err)
				return
			}
			lines = append(lines, rawLine{sw: peek.Switch, line: append([]byte(nil), line...)})
		}
	}
	sort.SliceStable(lines, func(i, j int) bool { return lines[i].sw < lines[j].sw })
	markDegraded(w, degraded)
	w.Header().Set("Content-Type", "application/x-ndjson")
	for _, l := range lines {
		w.Write(l.line)
		w.Write([]byte{'\n'})
	}
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := c.clusterMetrics(r.Context())
	if wantsPrometheus(r.Header.Get("Accept")) {
		writeClusterPrometheus(w, m)
		return
	}
	markDegraded(w, m.Degraded)
	writeJSON(w, http.StatusOK, m)
}

func (c *Coordinator) clusterMetrics(ctx context.Context) ClusterMetrics {
	bodies := make([][]byte, len(c.replicas))
	errs := make([]error, len(c.replicas))
	var wg sync.WaitGroup
	for i, rep := range c.replicas {
		wg.Add(1)
		go func(i int, rep ReplicaSpec) {
			defer wg.Done()
			body, status, err := c.call(ctx, rep, http.MethodGet, "/metrics", "", nil)
			if err == nil && status != http.StatusOK {
				err = fmt.Errorf("metrics returned %d", status)
			}
			if err != nil {
				errs[i] = err
				return
			}
			bodies[i] = body
		}(i, rep)
	}
	wg.Wait()
	out := ClusterMetrics{AlertsByType: make(map[string]uint64)}
	for i, rep := range c.replicas {
		rm := ReplicaMetrics{Name: rep.Name, URL: rep.URL}
		if errs[i] != nil {
			rm.Error = errs[i].Error()
			out.Degraded = append(out.Degraded, rep.Name)
			out.Replicas = append(out.Replicas, rm)
			continue
		}
		var sm ServiceMetrics
		if err := json.Unmarshal(bodies[i], &sm); err != nil {
			rm.Error = err.Error()
			out.Degraded = append(out.Degraded, rep.Name)
			out.Replicas = append(out.Replicas, rm)
			continue
		}
		rm.Alive = true
		rm.Metrics = &sm
		out.Replicas = append(out.Replicas, rm)
		if sm.Rounds > out.Rounds {
			out.Rounds = sm.Rounds
		}
		out.RulesSwept += sm.RulesSwept
		out.AlertsTotal += sm.AlertsTotal
		out.SinkErrors += sm.SinkErrors
		out.StoreErrors += sm.StoreErrors
		out.PolicyErrors += sm.PolicyErrors
		out.Switches += len(sm.Switches)
		for t, n := range sm.AlertsByType {
			out.AlertsByType[t] += n
		}
	}
	if len(out.AlertsByType) == 0 {
		out.AlertsByType = nil
	}
	sort.Strings(out.Degraded)
	return out
}

// writeClusterPrometheus renders the cluster rollups plus replica-labelled
// series in the Prometheus text exposition format. Per-switch series keep
// both the switch and the owning replica as labels.
func writeClusterPrometheus(w http.ResponseWriter, m ClusterMetrics) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b bytes.Buffer
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("monocle_cluster_sweep_rounds_total", "Completed sweep rounds (max across replicas).", m.Rounds)
	counter("monocle_cluster_rules_swept_total", "Per-rule results across all replicas.", m.RulesSwept)
	counter("monocle_cluster_alerts_total", "Alerts raised across all replicas.", m.AlertsTotal)
	counter("monocle_cluster_sink_errors_total", "Failed alert-sink deliveries across all replicas.", m.SinkErrors)
	counter("monocle_cluster_store_errors_total", "Failed persistence-store writes across all replicas.", m.StoreErrors)
	fmt.Fprintf(&b, "# HELP monocle_cluster_switches Registered switches across all replicas.\n# TYPE monocle_cluster_switches gauge\nmonocle_cluster_switches %d\n", m.Switches)
	fmt.Fprintf(&b, "# HELP monocle_cluster_degraded_shards Replicas currently unreachable.\n# TYPE monocle_cluster_degraded_shards gauge\nmonocle_cluster_degraded_shards %d\n", len(m.Degraded))

	fmt.Fprintf(&b, "# HELP monocle_replica_up Replica answered its last metrics fan-in.\n# TYPE monocle_replica_up gauge\n")
	for _, rm := range m.Replicas {
		up := 0
		if rm.Alive {
			up = 1
		}
		fmt.Fprintf(&b, "monocle_replica_up{replica=%q} %d\n", rm.Name, up)
	}
	perReplica := func(name, help, kind string, value func(*ServiceMetrics) string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
		for _, rm := range m.Replicas {
			if rm.Metrics == nil {
				continue
			}
			fmt.Fprintf(&b, "%s{replica=%q} %s\n", name, rm.Name, value(rm.Metrics))
		}
	}
	perReplica("monocle_sweep_rounds_total", "Completed sweep rounds per replica.", "counter",
		func(sm *ServiceMetrics) string { return strconv.FormatUint(sm.Rounds, 10) })
	perReplica("monocle_rules_swept_total", "Per-rule results per replica across all rounds.", "counter",
		func(sm *ServiceMetrics) string { return strconv.FormatUint(sm.RulesSwept, 10) })
	perReplica("monocle_alerts_raised_total", "Alerts raised per replica.", "counter",
		func(sm *ServiceMetrics) string { return strconv.FormatUint(sm.AlertsTotal, 10) })
	perReplica("monocle_last_round_rules", "Result count of the replica's most recent round.", "gauge",
		func(sm *ServiceMetrics) string { return strconv.Itoa(sm.LastRoundRules) })
	perReplica("monocle_last_round_us_per_rule", "Per-rule cost of the replica's most recent round in microseconds.", "gauge",
		func(sm *ServiceMetrics) string { return strconv.FormatFloat(sm.LastRoundMicrosPerRule, 'g', -1, 64) })

	fmt.Fprintf(&b, "# HELP monocle_switch_epoch Table-change epoch per switch.\n# TYPE monocle_switch_epoch gauge\n")
	for _, rm := range m.Replicas {
		if rm.Metrics == nil {
			continue
		}
		sws := append([]SwitchMetrics(nil), rm.Metrics.Switches...)
		sort.Slice(sws, func(i, j int) bool { return sws[i].Switch < sws[j].Switch })
		for _, sw := range sws {
			fmt.Fprintf(&b, "monocle_switch_epoch{replica=%q,switch=\"%d\"} %d\n", rm.Name, sw.Switch, sw.Epoch)
		}
	}
	fmt.Fprintf(&b, "# HELP monocle_switch_rules Installed rules per switch.\n# TYPE monocle_switch_rules gauge\n")
	for _, rm := range m.Replicas {
		if rm.Metrics == nil {
			continue
		}
		sws := append([]SwitchMetrics(nil), rm.Metrics.Switches...)
		sort.Slice(sws, func(i, j int) bool { return sws[i].Switch < sws[j].Switch })
		for _, sw := range sws {
			fmt.Fprintf(&b, "monocle_switch_rules{replica=%q,switch=\"%d\"} %d\n", rm.Name, sw.Switch, sw.Rules)
		}
	}
	w.Write(b.Bytes())
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Health(r.Context()))
}

func (c *Coordinator) handleLivez(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

func (c *Coordinator) handleReadyz(w http.ResponseWriter, r *http.Request) {
	h := c.Health(r.Context())
	status := http.StatusOK
	if !h.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

func (c *Coordinator) handleShards(w http.ResponseWriter, r *http.Request) {
	bodies, degraded := c.fanIn(r.Context(), "/switches")
	m := c.ShardMap()
	m.Degraded = degraded
	m.Switches = make(map[uint32]string)
	for _, body := range bodies {
		if body == nil {
			continue
		}
		var part []SwitchMetrics
		if err := json.Unmarshal(body, &part); err != nil {
			httpError(w, http.StatusBadGateway, err)
			return
		}
		for _, sw := range part {
			m.Switches[sw.Switch] = m.Owner(sw.Switch)
		}
	}
	markDegraded(w, degraded)
	writeJSON(w, http.StatusOK, m)
}
