// Package repro_test holds the top-level benchmark harness: one benchmark
// per table and figure of the paper's evaluation (§8), plus ablation
// benchmarks for the design choices called out in DESIGN.md. Run with
//
//	go test -bench=. -benchmem
//
// The benchmarks run reduced repetitions/sizes per iteration; the
// cmd/experiments binary regenerates the full-size tables.
package monocle_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"monocle"
	"monocle/internal/cnf"
	"monocle/internal/dataset"
	"monocle/internal/experiments"
	"monocle/internal/flowtable"
	"monocle/internal/header"
	"monocle/internal/probe"
	"monocle/internal/sat"
	"monocle/internal/switchsim"
)

// BenchmarkTable2Stanford measures per-rule probe generation on the
// Stanford-like ACL dataset (paper: 1.48 ms avg).
func BenchmarkTable2Stanford(b *testing.B) {
	benchDatasetGeneration(b, dataset.Stanford(), false)
}

// BenchmarkTable2Campus measures per-rule probe generation on the
// Campus-like ACL dataset (paper: 4.03 ms avg).
func BenchmarkTable2Campus(b *testing.B) {
	benchDatasetGeneration(b, dataset.Campus(), false)
}

// BenchmarkAblationOverlapFilterOff disables the §5.4 overlap pre-filter:
// every rule feeds the constraints, quantifying the optimization.
func BenchmarkAblationOverlapFilterOff(b *testing.B) {
	p := dataset.Stanford()
	p.Rules = 400 // unfiltered generation is quadratic; keep it finite
	benchDatasetGeneration(b, p, true)
}

func benchDatasetGeneration(b *testing.B, p dataset.Profile, skipFilter bool) {
	tb, rules := dataset.Generate(p)
	gen := probe.NewGenerator(probe.Config{
		Collect:           flowtable.MatchAll().WithExact(header.VlanID, 1),
		SkipOverlapFilter: skipFilter,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = gen.Generate(tb, rules[i%len(rules)])
	}
}

// BenchmarkAblationChainSplitting compares the Velev if-then-else chain
// with aggressive vs no splitting (Appendix B: long chains are quadratic
// and must be split via fresh variables).
func BenchmarkAblationChainSplitting(b *testing.B) {
	tb, rules := dataset.Generate(dataset.Stanford())
	for _, mc := range []int{4, 16, 1 << 20} {
		name := "MaxChain=unbounded"
		if mc < 1<<20 {
			name = fmt.Sprintf("MaxChain=%d", mc)
		}
		b.Run(name, func(b *testing.B) {
			gen := probe.NewGenerator(probe.Config{
				Collect:  flowtable.MatchAll().WithExact(header.VlanID, 1),
				MaxChain: mc,
			})
			for i := 0; i < b.N; i++ {
				_, _ = gen.Generate(tb, rules[i%len(rules)])
			}
		})
	}
}

// BenchmarkFigure4 runs one full failure-detection repetition (1000-rule
// table, 500 probes/s, one failed rule) per iteration.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultFigure4(1)
		cfg.Rules = 1000
		cfg.Scenarios = cfg.Scenarios[:1] // "1 out of 1"
		res := experiments.RunFigure4(cfg)
		if len(res.Series["1 out of 1"]) != 1 {
			b.Fatal("no detection")
		}
	}
}

// BenchmarkFigure5HP runs the 300-flow consistent update against the
// HP-like switch with Monocle confirmations.
func BenchmarkFigure5HP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunFigure5(experiments.Figure5Config{
			Flows: 300, PacketRate: 300,
			S3Profile:  switchsim.HP5406zl(),
			UseMonocle: true, Seed: 5,
		})
		if res.Dropped > 100 {
			b.Fatalf("unexpected drops: %f", res.Dropped)
		}
	}
}

// BenchmarkFigure5Pica8Barriers is the inconsistent baseline.
func BenchmarkFigure5Pica8Barriers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunFigure5(experiments.Figure5Config{
			Flows: 300, PacketRate: 300,
			S3Profile:  switchsim.Pica8(),
			UseMonocle: false, Seed: 5,
		})
		if res.Dropped == 0 {
			b.Fatal("baseline should drop packets")
		}
	}
}

// BenchmarkFigure6 sweeps the PacketOut:FlowMod interference matrix.
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.RunFigure6()) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkFigure7 sweeps the PacketIn interference matrix.
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.RunFigure7()) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkFigure8 runs a 400-path batched FatTree update under Monocle.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunFigure8(experiments.Figure8Config{
			Paths: 400, BatchSize: 40, BatchEvery: 10 * time.Millisecond,
			UseMonocle: true, Seed: 8,
		})
		if res.Total == 0 {
			b.Fatal("nothing completed")
		}
	}
}

// BenchmarkFigure9Zoo colors a 40-topology Zoo subset per iteration.
func BenchmarkFigure9Zoo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunFigure9Zoo(500_000, 40)
		if len(res.Rows) != 40 {
			b.Fatal("rows")
		}
	}
}

// BenchmarkProbeGenerationSingle isolates one probe generation on the
// Campus table (the §8.2 "few milliseconds" claim).
func BenchmarkProbeGenerationSingle(b *testing.B) {
	tb, rules := dataset.Generate(dataset.Campus())
	gen := probe.NewGenerator(probe.Config{
		Collect: flowtable.MatchAll().WithExact(header.VlanID, 1),
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = gen.Generate(tb, rules[i%len(rules)])
	}
}

// benchSweepTable is the shared whole-table sweep workload: a
// Stanford-shaped ACL trimmed so one sweep stays benchmarkable (the
// cmd/experiments binary sweeps the full-size tables).
func benchSweepTable() (*flowtable.Table, []*flowtable.Rule) {
	p := dataset.Stanford()
	p.Rules = 600
	return dataset.Generate(p)
}

func benchSweepGenerator() *probe.Generator {
	return probe.NewGenerator(probe.Config{
		Collect: flowtable.MatchAll().WithExact(header.VlanID, 1),
	})
}

// BenchmarkProbeGenerationPerRuleLoop is the baseline the incremental
// engine is measured against: the one-shot Generate called for every rule
// of the table, re-encoding the CNF and building a fresh solver each time.
func BenchmarkProbeGenerationPerRuleLoop(b *testing.B) {
	tb, rules := benchSweepTable()
	gen := benchSweepGenerator()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range rules {
			_, _ = gen.Generate(tb, r)
		}
	}
}

// BenchmarkProbeGenerationIncremental sweeps the same table through one
// persistent probe.Session: the table encoding and solver are built once,
// each rule adds only its Distinguish delta plus assumptions.
func BenchmarkProbeGenerationIncremental(b *testing.B) {
	tb, rules := benchSweepTable()
	gen := benchSweepGenerator()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess, err := gen.NewSession(tb)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rules {
			_, _ = sess.Generate(r)
		}
	}
}

// BenchmarkProbeGenerationBatch is the steady-state sweep workload:
// GenerateAll fans the scope-clustered incremental engine (shared block
// prefixes, learnt-clause/phase reuse within a cluster) out over all CPUs.
func BenchmarkProbeGenerationBatch(b *testing.B) {
	tb, _ := benchSweepTable()
	gen := benchSweepGenerator()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.GenerateAll(context.Background(), tb, 0)
	}
}

// BenchmarkSweepClusteringOff ablates the scope clustering: the same
// GenerateAll sweep, but rule-by-rule with an exact retract to base after
// every rule (the PR 1 engine).
func BenchmarkSweepClusteringOff(b *testing.B) {
	tb, _ := benchSweepTable()
	gen := probe.NewGenerator(probe.Config{
		Collect:           flowtable.MatchAll().WithExact(header.VlanID, 1),
		DisableClustering: true,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.GenerateAll(context.Background(), tb, 0)
	}
}

// BenchmarkSweepLearntReuseOff ablates the learnt-clause/phase reuse while
// keeping the clusters: shared prefixes stay attached, but the per-rule
// retract drops learnt clauses, activities, and saved phases.
func BenchmarkSweepLearntReuseOff(b *testing.B) {
	tb, _ := benchSweepTable()
	gen := probe.NewGenerator(probe.Config{
		Collect:            flowtable.MatchAll().WithExact(header.VlanID, 1),
		DisableLearntReuse: true,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.GenerateAll(context.Background(), tb, 0)
	}
}

// benchChurn swaps one rule of the table per epoch (delete + reinsert a
// fresh variant), modelling the Monitor's dynamic-update steady state.
func benchChurn(tb *flowtable.Table, rules []*flowtable.Rule, i int) {
	victim := rules[i%len(rules)]
	_ = tb.Delete(victim.ID)
	cp := victim.Clone()
	cp.ID = victim.ID
	_ = tb.Insert(cp)
}

// BenchmarkSessionCacheEpochSweep measures the Monitor-layer reuse: one
// rule of the table churns per epoch and the whole table is re-swept
// through the epoch-aware SessionCache, which recompiles only the churned
// rule instead of the whole library.
func BenchmarkSessionCacheEpochSweep(b *testing.B) {
	p := dataset.Stanford()
	p.Rules = 200
	tb, rules := dataset.Generate(p)
	gen := benchSweepGenerator()
	cache := gen.NewSessionCache(tb)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchChurn(tb, rules, i)
		cache.GenerateAll(context.Background(), uint64(i+1), 0)
	}
}

// BenchmarkDynamicUpdateProbe measures the dynamic-monitoring path: one
// rule churns per epoch and only that rule's probe is generated, through
// the epoch-aware SessionCache (delta recompile of the churned rule).
func BenchmarkDynamicUpdateProbe(b *testing.B) {
	p := dataset.Stanford()
	p.Rules = 200
	tb, rules := dataset.Generate(p)
	gen := benchSweepGenerator()
	cache := gen.NewSessionCache(tb)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchChurn(tb, rules, i)
		sess, err := cache.Session(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		r, _ := tb.Get(rules[i%len(rules)].ID)
		_, _ = sess.Generate(r)
	}
}

// BenchmarkDynamicUpdateProbeNoCache is the cache-off ablation of the
// dynamic path: the one-shot generator re-encodes the constraints for the
// churned rule from scratch (PR 1's dynamic path).
func BenchmarkDynamicUpdateProbeNoCache(b *testing.B) {
	p := dataset.Stanford()
	p.Rules = 200
	tb, rules := dataset.Generate(p)
	gen := benchSweepGenerator()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchChurn(tb, rules, i)
		r, _ := tb.Get(rules[i%len(rules)].ID)
		_, _ = gen.Generate(tb, r)
	}
}

// BenchmarkSessionCacheOffEpochSweep is the cache-off ablation: the same
// churn-then-sweep workload, recompiling the table library from scratch
// every epoch.
func BenchmarkSessionCacheOffEpochSweep(b *testing.B) {
	p := dataset.Stanford()
	p.Rules = 200
	tb, rules := dataset.Generate(p)
	gen := benchSweepGenerator()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchChurn(tb, rules, i)
		gen.GenerateAll(context.Background(), tb, 0)
	}
}

// buildFleet assembles the BenchmarkFleetSweep workload: n switches with
// `rules` ACL rules each (per-switch table variants), under one worker
// budget.
func buildFleet(b *testing.B, n, rules, workers int) *monocle.Fleet {
	fleet := monocle.NewFleet(monocle.WithWorkers(workers))
	p := dataset.Stanford()
	p.Rules = rules
	for id := uint32(1); id <= uint32(n); id++ {
		pv := p
		pv.Seed = int64(id) * 104729
		v, err := fleet.AddSwitch(id)
		if err != nil {
			b.Fatal(err)
		}
		_, tableRules := dataset.Generate(pv)
		if err := v.Install(tableRules...); err != nil {
			b.Fatal(err)
		}
	}
	return fleet
}

// BenchmarkFleetSweep is the sharded multi-switch sweep service workload:
// 8 switches x 200 rules swept through one Fleet per iteration, for
// several fleet-wide worker budgets (0 = all CPUs). The first sweep of an
// iteration compiles each member's table library; steady-state re-sweeps
// are measured by BenchmarkFleetResweep.
func BenchmarkFleetSweep(b *testing.B) {
	for _, workers := range []int{1, 4, 0} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				fleet := buildFleet(b, 8, 200, workers)
				b.StartTimer()
				if n := len(fleet.Sweep(context.Background())); n != 8*200 {
					b.Fatalf("swept %d results", n)
				}
			}
		})
	}
}

// BenchmarkFleetResweep measures the steady-state cadence of the sweep
// service: tables already compiled, one rule of one member churning per
// iteration, whole fleet re-swept through the epoch-aware caches.
func BenchmarkFleetResweep(b *testing.B) {
	fleet := buildFleet(b, 8, 200, 0)
	fleet.Sweep(context.Background()) // compile + prewarm
	victim, _ := fleet.Verifier(1)
	rules := victim.Rules()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := rules[i%len(rules)]
		if _, err := victim.Delete(r.ID); err != nil && !errors.Is(err, monocle.ErrUnmonitorable) {
			b.Fatal(err)
		}
		if err := victim.Install(r); err != nil {
			b.Fatal(err)
		}
		if n := len(fleet.Sweep(context.Background())); n != 8*200 {
			b.Fatalf("swept %d results", n)
		}
	}
}

// BenchmarkSATSolverProbeShape measures the raw SAT backend on a
// probe-shaped instance (hundreds of vars, unit-heavy clauses).
func BenchmarkSATSolverProbeShape(b *testing.B) {
	enc := cnf.NewEncoder(header.TotalBits)
	var lits []*cnf.Formula
	for i := 1; i <= 64; i++ {
		lits = append(lits, cnf.Lit(i))
	}
	enc.Assert(cnf.Or(lits...))
	for i := 65; i < 128; i++ {
		enc.Assert(cnf.Or(cnf.Lit(-i), cnf.Lit(i+1)))
	}
	vec := enc.Vector()
	n := enc.NumVars()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if st, _, err := sat.SolveVector(n, vec); err != nil || st != sat.Satisfiable {
			b.Fatal("solve failed")
		}
	}
}
