package monocle_test

// Backend-seam tests: the differential proof that a Service fleet of
// SimBackends produces bit-identical sweep records and alerts to the
// pre-redesign path (a bare Fleet of Verifiers, hand-held data-plane
// tables, EvaluateProbe, and a Differ), plus unit coverage of the
// SimBackend driver, the alert sinks, and the Prometheus metrics
// exposition.

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"monocle"
)

// refPath is the pre-redesign service semantics, reimplemented verbatim:
// one Verifier per switch, one plain Table as the data plane, probes
// judged with EvaluateProbe, rounds folded through a Differ.
type refPath struct {
	fleet  *monocle.Fleet
	actual map[uint32]*monocle.Table
	differ *monocle.Differ
}

func newRefPath(opts ...monocle.Option) *refPath {
	return &refPath{
		fleet:  monocle.NewFleet(opts...),
		actual: map[uint32]*monocle.Table{},
		differ: monocle.NewDiffer(opts...),
	}
}

func (r *refPath) addSwitch(t *testing.T, id uint32, rules []*monocle.Rule) {
	t.Helper()
	v, err := r.fleet.AddSwitch(id)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Install(rules...); err != nil {
		t.Fatal(err)
	}
	actual := monocle.NewTable()
	for _, rule := range rules {
		if err := actual.Insert(rule.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	r.actual[id] = actual
}

func (r *refPath) round(ctx context.Context) ([]monocle.ResultRecord, []monocle.Alert) {
	var recs []monocle.ResultRecord
	for _, ev := range r.fleet.Sweep(ctx) {
		if actual := r.actual[ev.SwitchID]; actual != nil && ev.Result.Probe != nil {
			r.differ.ObserveVerdict(ev, monocle.EvaluateProbe(ev.Result.Probe, actual))
		} else {
			r.differ.Observe(ev)
		}
		recs = append(recs, ev.Record())
	}
	return recs, r.differ.EndSweep()
}

// datasetRules builds a per-switch rule table variant.
func datasetRules(n int, seed int64) []*monocle.Rule {
	p := monocle.StanfordDataset()
	p.Rules = n
	p.Seed = seed
	_, rules := monocle.GenerateDataset(p)
	return rules
}

// TestSimBackendDifferential drives the redesigned Service (Fleet of
// SimBackends behind the Backend seam) and the pre-redesign path through
// the same five-round script — healthy, behind-the-back divergence,
// latched, recovery, intentional change — and requires bit-identical
// sweep records and alerts every round, for multiple worker budgets.
func TestSimBackendDifferential(t *testing.T) {
	const (
		nSwitches = 3
		nRules    = 12
	)
	ctx := context.Background()

	type roundOutput struct {
		recs   string
		alerts string
	}
	var outputs [][]roundOutput // per budget, per round

	for _, budget := range []int{1, 3} {
		opts := []monocle.Option{monocle.WithWorkers(budget), monocle.WithDebounce(2)}
		ref := newRefPath(opts...)
		svc := monocle.NewService(opts...)
		defer svc.Close()

		for id := uint32(1); id <= nSwitches; id++ {
			rules := datasetRules(nRules, int64(id))
			ref.addSwitch(t, id, rules)
			if _, err := svc.AddSwitch(monocle.SwitchSpec{ID: id}); err != nil {
				t.Fatal(err)
			}
			if err := svc.InstallRules(id, datasetRules(nRules, int64(id))...); err != nil {
				t.Fatal(err)
			}
		}

		// Locate the divergence victim: switch 2's first monitorable rule.
		v2, _ := ref.fleet.Verifier(2)
		var victim *monocle.Rule
		for _, r := range v2.Rules() {
			if len(r.Actions) != 1 || r.Actions[0].Port == 0 || len(r.Actions[0].Ports) != 0 {
				continue
			}
			if _, err := v2.ProbeFor(r.ID); err != nil {
				continue // hidden or otherwise unmonitorable
			}
			victim = r.Clone()
			break
		}
		if victim == nil {
			t.Fatal("no monitorable plain-output rule to diverge")
		}
		wrong := []monocle.Action{monocle.Output(monocle.PortID(63))}

		mutate := [5]func(){
			0: func() {}, // healthy baseline
			1: func() { // hardware silently rewrites the victim's port
				if err := ref.actual[2].Modify(victim.ID, wrong); err != nil {
					t.Fatal(err)
				}
				if _, err := svc.ApplyRule(2, monocle.RuleOp{
					Op: "modify", ID: victim.ID, Dataplane: "actual",
					Actions: []monocle.ActionSpec{{Output: 63}},
				}); err != nil {
					t.Fatal(err)
				}
			},
			2: func() {}, // divergence latched: debounced alert fires here
			3: func() { // hardware recovers
				if err := ref.actual[2].Modify(victim.ID, victim.Actions); err != nil {
					t.Fatal(err)
				}
				specs := make([]monocle.ActionSpec, len(victim.Actions))
				for i, a := range victim.Actions {
					specs[i] = monocle.ActionSpec{Output: uint16(a.Port)}
				}
				if _, err := svc.ApplyRule(2, monocle.RuleOp{
					Op: "modify", ID: victim.ID, Dataplane: "actual", Actions: specs,
				}); err != nil {
					t.Fatal(err)
				}
			},
			4: func() { // intentional change: both sides move together
				add := &monocle.Rule{ID: 9001, Priority: 20000,
					Match: monocle.MatchAll().
						WithExact(monocle.EthType, monocle.EthTypeIPv4).
						WithExact(monocle.IPSrc, 10<<24|77),
					Actions: []monocle.Action{monocle.Output(2)},
				}
				if err := ref.actual[1].Insert(add.Clone()); err != nil {
					t.Fatal(err)
				}
				v1, _ := ref.fleet.Verifier(1)
				if _, err := v1.Add(add.Clone()); err != nil && !errors.Is(err, monocle.ErrUnmonitorable) {
					t.Fatal(err)
				}
				if _, err := svc.ApplyRule(1, monocle.RuleOp{Op: "add", Rule: &monocle.RuleSpec{
					ID: 9001, Priority: 20000,
					Match:   map[string]string{"dl_type": "0x800", "nw_src": "10.0.0.77"},
					Actions: []monocle.ActionSpec{{Output: 2}},
				}}); err != nil {
					t.Fatal(err)
				}
			},
		}

		var rounds []roundOutput
		for i, m := range mutate {
			m()
			wantRecs, wantAlerts := ref.round(ctx)
			gotAlerts := svc.SweepRound(ctx)
			gotRecs := svc.LastSweep()

			wr, _ := json.Marshal(wantRecs)
			gr, _ := json.Marshal(gotRecs)
			if string(wr) != string(gr) {
				t.Fatalf("budget %d round %d: sweep records diverge\nref: %s\nsvc: %s", budget, i, wr, gr)
			}
			wa, _ := json.Marshal(wantAlerts)
			ga, _ := json.Marshal(gotAlerts)
			if string(wa) != string(ga) {
				t.Fatalf("budget %d round %d: alerts diverge\nref: %s\nsvc: %s", budget, i, wa, ga)
			}
			rounds = append(rounds, roundOutput{recs: string(gr), alerts: string(ga)})
		}

		// The script must actually exercise the alert path.
		if !strings.Contains(rounds[2].alerts, "rule_failing") {
			t.Fatalf("round 2 raised no failing alert: %s", rounds[2].alerts)
		}
		if !strings.Contains(rounds[3].alerts, "rule_recovered") {
			t.Fatalf("round 3 raised no recovery alert: %s", rounds[3].alerts)
		}
		if rounds[4].alerts != "null" && rounds[4].alerts != "[]" {
			t.Fatalf("intentional change raised alerts: %s", rounds[4].alerts)
		}
		outputs = append(outputs, rounds)
	}

	// Bit-identical across worker budgets too.
	if !reflect.DeepEqual(outputs[0], outputs[1]) {
		t.Fatal("sweep outputs differ across worker budgets")
	}
}

func TestSimBackendDriver(t *testing.T) {
	be := monocle.NewSimBackend(7, monocle.WithTableMiss(monocle.MissController))
	if be.SwitchID() != 7 {
		t.Fatalf("SwitchID = %d", be.SwitchID())
	}
	if err := be.Connect(context.Background()); err != nil {
		t.Fatal(err)
	}
	rule := &monocle.Rule{ID: 1, Priority: 10,
		Match: monocle.MatchAll().
			WithExact(monocle.EthType, monocle.EthTypeIPv4).
			WithExact(monocle.IPSrc, 10<<24|1),
		Actions: []monocle.Action{monocle.Output(2)},
	}
	if err := be.Apply(monocle.BackendOp{Op: "add", Rule: rule}); err != nil {
		t.Fatal(err)
	}
	if got := be.Epoch(); got != 1 {
		t.Fatalf("epoch after add = %d", got)
	}
	if err := be.Apply(monocle.BackendOp{Op: "frobnicate", Rule: rule}); err == nil {
		t.Fatal("unknown op accepted")
	}
	if err := be.Apply(monocle.BackendOp{Op: "add"}); err == nil {
		t.Fatal("add without a rule accepted")
	}
	if err := be.Apply(monocle.BackendOp{Op: "delete", ID: 404}); !errors.Is(err, monocle.ErrNotFound) {
		t.Fatalf("deleting an unknown id = %v", err)
	}

	// A probe for the rule judges confirmed against the table, absent
	// after the rule is deleted from it.
	v, err := monocle.NewVerifier(monocle.WithProbeTag(7), monocle.WithTableMiss(monocle.MissController))
	if err != nil {
		t.Fatal(err)
	}
	p, err := v.Add(rule.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if got, err := be.Observe(context.Background(), p, monocle.ExpectPresent); err != nil || got != monocle.VerdictConfirmed {
		t.Fatalf("Observe with rule installed = %v, %v", got, err)
	}
	if err := be.Apply(monocle.BackendOp{Op: "delete", ID: rule.ID, Rule: rule}); err != nil {
		t.Fatal(err)
	}
	if got, err := be.Observe(context.Background(), p, monocle.ExpectPresent); err != nil || got != monocle.VerdictAbsent {
		t.Fatalf("Observe with rule deleted = %v, %v", got, err)
	}

	// Close ends the event stream and fails further operations.
	if err := be.Close(); err != nil {
		t.Fatal(err)
	}
	if err := be.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	var last []monocle.BackendEvent
	for ev := range be.Events() {
		last = append(last, ev)
	}
	if len(last) < 2 || last[0].Type != monocle.BackendConnected || last[len(last)-1].Type != monocle.BackendClosed {
		t.Fatalf("event stream = %+v", last)
	}
	if err := be.Apply(monocle.BackendOp{Op: "add", Rule: rule}); !errors.Is(err, monocle.ErrBackendClosed) {
		t.Fatalf("Apply after Close = %v", err)
	}
	if _, err := be.Observe(context.Background(), p, monocle.ExpectPresent); !errors.Is(err, monocle.ErrBackendClosed) {
		t.Fatalf("Observe after Close = %v", err)
	}
}

func TestRingSinkRetention(t *testing.T) {
	ring := monocle.NewRingSink(3)
	for i := 0; i < 5; i++ {
		if err := ring.Deliver(context.Background(), []monocle.Alert{{SwitchID: uint32(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	got := ring.Alerts()
	if len(got) != 3 || got[0].SwitchID != 2 || got[2].SwitchID != 4 {
		t.Fatalf("ring retained %+v", got)
	}
	if ring.Len() != 3 {
		t.Fatalf("Len = %d", ring.Len())
	}
}

func TestWebhookSink(t *testing.T) {
	var bodies []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		bodies = append(bodies, string(b))
		if strings.Contains(string(b), `"switch":13`) {
			http.Error(w, "no thanks", http.StatusBadGateway)
		}
	}))
	defer srv.Close()

	sink := monocle.NewWebhookSink(srv.URL, srv.Client())
	defer sink.Close()
	if err := sink.Deliver(context.Background(), []monocle.Alert{{Type: monocle.AlertRuleFailing, SwitchID: 5, Rule: 2}}); err != nil {
		t.Fatal(err)
	}
	if len(bodies) != 1 || !strings.Contains(bodies[0], `"rule_failing"`) {
		t.Fatalf("webhook bodies = %q", bodies)
	}
	var arr []monocle.Alert
	if err := json.Unmarshal([]byte(bodies[0]), &arr); err != nil || len(arr) != 1 || arr[0].SwitchID != 5 {
		t.Fatalf("webhook payload is not an alert array: %q (%v)", bodies[0], err)
	}
	if err := sink.Deliver(context.Background(), []monocle.Alert{{SwitchID: 13}}); err == nil {
		t.Fatal("non-2xx response did not error")
	}
}

// TestServiceSinksAndPrometheus wires a webhook sink plus an explicit
// ring into a Service, injects a divergence, and checks the fan-out, the
// sink-error counter, and both /metrics representations.
func TestServiceSinksAndPrometheus(t *testing.T) {
	var hookBodies []string
	fail := false
	hook := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		hookBodies = append(hookBodies, string(b))
		if fail {
			http.Error(w, "down", http.StatusInternalServerError)
		}
	}))
	defer hook.Close()

	ring := monocle.NewRingSink(8)
	svc := monocle.NewService(
		monocle.WithWorkers(1),
		monocle.WithAlertSink(ring),
		monocle.WithAlertSink(monocle.NewWebhookSink(hook.URL, hook.Client())),
	)
	defer svc.Close()
	if _, err := svc.AddSwitch(monocle.SwitchSpec{ID: 1}); err != nil {
		t.Fatal(err)
	}
	rs := monocle.RuleSpec{ID: 1, Priority: 5,
		Match:   map[string]string{"dl_type": "0x800", "nw_src": "10.0.0.0/8"},
		Actions: []monocle.ActionSpec{{Output: 3}}}
	if _, err := svc.ApplyRule(1, monocle.RuleOp{Op: "add", Rule: &rs}); err != nil {
		t.Fatal(err)
	}
	svc.SweepRound(context.Background())
	if len(hookBodies) != 0 {
		t.Fatalf("healthy round hit the webhook: %q", hookBodies)
	}

	// Hardware loses the rule: the round's alert fans out to both sinks.
	if _, err := svc.ApplyRule(1, monocle.RuleOp{Op: "delete", ID: 1, Dataplane: "actual"}); err != nil {
		t.Fatal(err)
	}
	alerts := svc.SweepRound(context.Background())
	if len(alerts) != 1 || alerts[0].Type != monocle.AlertRuleFailing {
		t.Fatalf("alerts = %+v", alerts)
	}
	if len(hookBodies) != 1 || !strings.Contains(hookBodies[0], `"rule_failing"`) {
		t.Fatalf("webhook bodies = %q", hookBodies)
	}
	if got := ring.Alerts(); len(got) != 1 || got[0].Type != monocle.AlertRuleFailing {
		t.Fatalf("explicit ring missed the alert: %+v", got)
	}
	// The explicit ring replaced the default one behind Service.Alerts.
	if got := svc.Alerts(); len(got) != 1 {
		t.Fatalf("Service.Alerts = %+v", got)
	}

	// A failing webhook is counted, not fatal: hardware recovers, the
	// recovery alert still reaches the ring while the webhook 500s.
	fail = true
	if _, err := svc.ApplyRule(1, monocle.RuleOp{Op: "add", Dataplane: "actual", Rule: &rs}); err != nil {
		t.Fatal(err)
	}
	alerts = svc.SweepRound(context.Background())
	if len(alerts) != 1 || alerts[0].Type != monocle.AlertRuleRecovered {
		t.Fatalf("recovery alerts = %+v", alerts)
	}
	m := svc.Metrics()
	if m.SinkErrors != 1 {
		t.Fatalf("SinkErrors = %d", m.SinkErrors)
	}
	if m.AlertsByType["rule_failing"] != 1 || m.AlertsByType["rule_recovered"] != 1 {
		t.Fatalf("AlertsByType = %+v", m.AlertsByType)
	}

	// Content negotiation: JSON by default, Prometheus text on demand.
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("default /metrics content type = %q", ct)
	}
	var jm monocle.ServiceMetrics
	if err := json.Unmarshal(body, &jm); err != nil || jm.Rounds != 3 {
		t.Fatalf("JSON metrics = %s (%v)", body, err)
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("prometheus content type = %q", ct)
	}
	text := string(body)
	for _, w := range []string{
		"monocle_sweep_rounds_total 3",
		`monocle_alerts_total{type="rule_failing"} 1`,
		`monocle_alerts_total{type="rule_recovered"} 1`,
		`monocle_alerts_total{type="switch_stalled"} 0`,
		"monocle_sink_errors_total 1",
		`monocle_switch_epoch{switch="1"}`,
		`monocle_switch_rules{switch="1"} 1`,
		"monocle_last_round_us_per_rule",
		"# TYPE monocle_sweep_rounds_total counter",
	} {
		if !strings.Contains(text, w) {
			t.Fatalf("prometheus exposition missing %q:\n%s", w, text)
		}
	}
}
