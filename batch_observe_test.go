package monocle_test

// Batch-observation seam tests: the differential proof that routing a
// sweep's verdicts through ObserveBatch is bit-identical to the
// sequential one-shot path (for any worker budget), the live-driver
// batch/one-shot equivalence over real TCP, the seam-overhead alloc
// pin, and the zero-rule-round metrics guard.

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"monocle"
)

// plainBackend forwards every Backend method to the wrapped driver but
// deliberately does not implement BatchObserver, forcing the package
// ObserveBatch helper onto its sequential one-shot fallback.
type plainBackend struct{ inner monocle.Backend }

func (p plainBackend) SwitchID() uint32                    { return p.inner.SwitchID() }
func (p plainBackend) Connect(ctx context.Context) error   { return p.inner.Connect(ctx) }
func (p plainBackend) Close() error                        { return p.inner.Close() }
func (p plainBackend) Apply(op monocle.BackendOp) error    { return p.inner.Apply(op) }
func (p plainBackend) Epoch() uint64                       { return p.inner.Epoch() }
func (p plainBackend) Events() <-chan monocle.BackendEvent { return p.inner.Events() }
func (p plainBackend) Observe(ctx context.Context, pr *monocle.Probe, e monocle.Expectation) (monocle.Verdict, error) {
	return p.inner.Observe(ctx, pr, e)
}

// seamRule builds a plainly monitorable per-switch rule.
func seamRule(sw uint32, i uint64) *monocle.Rule {
	return &monocle.Rule{ID: 100*uint64(sw) + i, Priority: 10,
		Match: monocle.MatchAll().
			WithExact(monocle.EthType, monocle.EthTypeIPv4).
			WithExact(monocle.IPSrc, 10<<24|uint64(sw)<<8|i),
		Actions: []monocle.Action{monocle.Output(2)},
	}
}

// seamPath is a fleet of SimBackends folded through the batch seam; with
// strip=true the backends are wrapped so the seam's sequential fallback
// runs instead of the batched fast path.
type seamPath struct {
	fleet  *monocle.Fleet
	differ *monocle.Differ
	sims   map[uint32]*monocle.SimBackend
}

func newSeamPath(t *testing.T, budget int, strip bool) *seamPath {
	t.Helper()
	opts := []monocle.Option{monocle.WithWorkers(budget), monocle.WithDebounce(2)}
	sp := &seamPath{
		fleet:  monocle.NewFleet(opts...),
		differ: monocle.NewDiffer(opts...),
		sims:   map[uint32]*monocle.SimBackend{},
	}
	for id := uint32(1); id <= 3; id++ {
		sim := monocle.NewSimBackend(id)
		sp.sims[id] = sim
		var be monocle.Backend = sim
		if strip {
			be = plainBackend{sim}
		}
		v, err := sp.fleet.AddBackend(be)
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < 12; i++ {
			r := seamRule(id, i)
			if err := sim.Apply(monocle.BackendOp{Op: "add", Rule: r.Clone()}); err != nil {
				t.Fatal(err)
			}
			if _, err := v.Add(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	return sp
}

// round sweeps once and folds the verdicts through ObserveBatch — the
// same contiguous-run grouping SweepRound uses — returning the records
// and alerts as canonical JSON.
func (sp *seamPath) round(t *testing.T, ctx context.Context) (string, string) {
	t.Helper()
	evs := sp.fleet.Sweep(ctx)
	var recs []monocle.ResultRecord
	for lo := 0; lo < len(evs); {
		hi := lo + 1
		for hi < len(evs) && evs[hi].SwitchID == evs[lo].SwitchID {
			hi++
		}
		be, ok := sp.fleet.Backend(evs[lo].SwitchID)
		var probes []*monocle.Probe
		var expects []monocle.Expectation
		if ok {
			for i := lo; i < hi; i++ {
				if evs[i].Result.Probe != nil {
					probes = append(probes, evs[i].Result.Probe)
					expects = append(expects, monocle.ExpectPresent)
				}
			}
		}
		var verdicts []monocle.Verdict
		var errs []error
		if len(probes) > 0 {
			verdicts, errs = monocle.ObserveBatch(ctx, be, probes, expects)
		}
		j := 0
		for i := lo; i < hi; i++ {
			ev := evs[i]
			if ok && ev.Result.Probe != nil {
				if errs[j] == nil {
					sp.differ.ObserveVerdict(ev, verdicts[j])
				} else {
					sp.differ.Observe(ev)
				}
				j++
			} else {
				sp.differ.Observe(ev)
			}
			recs = append(recs, ev.Record())
		}
		lo = hi
	}
	alerts := sp.differ.EndSweep()
	rj, _ := json.Marshal(recs)
	aj, _ := json.Marshal(alerts)
	return string(rj), string(aj)
}

// TestBatchObserveDifferential: the batched fast path and the
// sequential one-shot fallback produce bit-identical sweep records and
// alert streams across a five-round fault script, for worker budgets
// 1, 2, and 8 — and the outputs are identical across the budgets too.
func TestBatchObserveDifferential(t *testing.T) {
	ctx := context.Background()
	var perBudget []string
	for _, budget := range []int{1, 2, 8} {
		batch := newSeamPath(t, budget, false)
		plain := newSeamPath(t, budget, true)
		victim := seamRule(2, 5)
		mutate := []func(sp *seamPath){
			func(*seamPath) {}, // healthy baseline
			func(sp *seamPath) { // hardware loses the rule behind the verifier's back
				if err := sp.sims[2].Apply(monocle.BackendOp{Op: "delete", ID: victim.ID, Rule: victim.Clone()}); err != nil {
					t.Fatal(err)
				}
			},
			func(*seamPath) {}, // latched: the debounce-2 alert fires here
			func(sp *seamPath) { // hardware recovers
				if err := sp.sims[2].Apply(monocle.BackendOp{Op: "add", Rule: victim.Clone()}); err != nil {
					t.Fatal(err)
				}
			},
			func(*seamPath) {},
		}
		var transcript []string
		for i, m := range mutate {
			m(batch)
			m(plain)
			bRecs, bAlerts := batch.round(t, ctx)
			pRecs, pAlerts := plain.round(t, ctx)
			if bRecs != pRecs {
				t.Fatalf("budget %d round %d: sweep records diverge\nbatch: %s\nplain: %s", budget, i, bRecs, pRecs)
			}
			if bAlerts != pAlerts {
				t.Fatalf("budget %d round %d: alerts diverge\nbatch: %s\nplain: %s", budget, i, bAlerts, pAlerts)
			}
			transcript = append(transcript, bRecs, bAlerts)
		}
		// The script must actually exercise the alert path.
		if !strings.Contains(transcript[5], "rule_failing") {
			t.Fatalf("budget %d: round 2 raised no failing alert: %s", budget, transcript[5])
		}
		if !strings.Contains(transcript[7], "rule_recovered") {
			t.Fatalf("budget %d: round 3 raised no recovery alert: %s", budget, transcript[7])
		}
		perBudget = append(perBudget, strings.Join(transcript, "\n"))
	}
	if perBudget[0] != perBudget[1] || perBudget[0] != perBudget[2] {
		t.Fatal("sweep outputs differ across worker budgets")
	}
}

// TestProxyObserveBatchMatchesOneShot: over a real TCP switch, the
// pipelined ObserveBatch reports the same per-probe verdicts as N
// serialized Observe round trips — including a rule failed behind the
// verifier's back mid-set.
func TestProxyObserveBatchMatchesOneShot(t *testing.T) {
	ports := []monocle.PortID{1, 2, 3, 4}
	srv, err := monocle.StartSwitchServer(monocle.SwitchServerConfig{ID: 9, Ports: ports, Profile: monocle.SwitchProfile{}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	peers := map[monocle.PortID]uint32{1: 9, 2: 9, 3: 9, 4: 9}
	be := monocle.NewProxyBackend(monocle.ProxyConfig{
		SwitchID:       9,
		SwitchAddr:     srv.Addr(),
		ObserveTimeout: 300 * time.Millisecond,
	}, monocle.WithPorts(ports...), monocle.WithPeers(peers))
	if err := be.Connect(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer be.Close()

	v, err := monocle.NewVerifier(monocle.WithProbeTag(9), monocle.WithPorts(ports...), monocle.WithPeers(peers))
	if err != nil {
		t.Fatal(err)
	}
	var probes []*monocle.Probe
	var expects []monocle.Expectation
	for i := uint64(0); i < 8; i++ {
		r := seamRule(9, i)
		if err := be.Apply(monocle.BackendOp{Op: "add", Rule: r.Clone()}); err != nil {
			t.Fatal(err)
		}
		p, err := v.Add(r)
		if err != nil {
			t.Fatal(err)
		}
		probes = append(probes, p)
		expects = append(expects, monocle.ExpectPresent)
	}
	// One rule fails in the data plane only: the batch must judge it
	// absent exactly like the one-shot path, amid confirmed neighbours.
	srv.FailRule(seamRule(9, 3).ID)

	ctx := context.Background()
	oneShot := make([]monocle.Verdict, len(probes))
	for i, p := range probes {
		verdict, err := be.Observe(ctx, p, expects[i])
		if err != nil {
			t.Fatalf("one-shot observe %d: %v", i, err)
		}
		oneShot[i] = verdict
	}
	verdicts, errs := monocle.ObserveBatch(ctx, be, probes, expects)
	for i := range probes {
		if errs[i] != nil {
			t.Fatalf("batch observe %d: %v", i, errs[i])
		}
		if verdicts[i] != oneShot[i] {
			t.Fatalf("probe %d: batch verdict %v != one-shot %v", i, verdicts[i], oneShot[i])
		}
	}
	if oneShot[3] != monocle.VerdictAbsent {
		t.Fatalf("failed rule judged %v, want %v", oneShot[3], monocle.VerdictAbsent)
	}
	for i, verdict := range oneShot {
		if i != 3 && verdict != monocle.VerdictConfirmed {
			t.Fatalf("healthy rule %d judged %v", i, verdict)
		}
	}
}

// TestSimBackendObserveBatchAllocs pins the batch seam's overhead: a
// 64-probe ObserveBatch may allocate at most the two result slices on
// top of what 64 one-shot Observe calls cost. (The per-probe evaluation
// itself allocates — what the pin bounds is the seam.)
func TestSimBackendObserveBatchAllocs(t *testing.T) {
	be := monocle.NewSimBackend(1)
	v, err := monocle.NewVerifier(monocle.WithProbeTag(1))
	if err != nil {
		t.Fatal(err)
	}
	var probes []*monocle.Probe
	var expects []monocle.Expectation
	for i := uint64(0); i < 64; i++ {
		r := seamRule(1, i)
		if err := be.Apply(monocle.BackendOp{Op: "add", Rule: r.Clone()}); err != nil {
			t.Fatal(err)
		}
		p, err := v.Add(r)
		if err != nil {
			t.Fatal(err)
		}
		probes = append(probes, p)
		expects = append(expects, monocle.ExpectPresent)
	}
	ctx := context.Background()
	oneShot := testing.AllocsPerRun(100, func() {
		for i, p := range probes {
			if _, err := be.Observe(ctx, p, expects[i]); err != nil {
				t.Fatal(err)
			}
		}
	})
	batch := testing.AllocsPerRun(100, func() {
		if _, errs := be.ObserveBatch(ctx, probes, expects); errs[0] != nil {
			t.Fatal(errs[0])
		}
	})
	if batch > oneShot+2 {
		t.Fatalf("batch ObserveBatch allocates %.0f/call, one-shot loop %.0f: the seam must add at most the 2 result slices", batch, oneShot)
	}
}

// TestZeroRulePlannedRoundMetrics: a policy round that plans zero rules
// (an empty-table group) must fold cleanly — no divide-by-zero in the
// per-rule latency metrics, zeros instead of NaN/Inf, and a /metrics
// snapshot that still marshals to JSON.
func TestZeroRulePlannedRoundMetrics(t *testing.T) {
	pol, err := monocle.ParsePolicy(`policy quietgroup {
  select tag "quiet"
  every 10ms
}`)
	if err != nil {
		t.Fatal(err)
	}
	svc := monocle.NewService(monocle.WithWorkers(1), monocle.WithPolicy(pol))
	defer svc.Close()
	if _, err := svc.AddSwitch(monocle.SwitchSpec{ID: 1, Tags: []string{"quiet"}}); err != nil {
		t.Fatal(err)
	}
	// No rules installed: the compiled plan samples zero rules.
	if alerts := svc.SweepRound(context.Background()); len(alerts) != 0 {
		t.Fatalf("empty round raised alerts: %v", alerts)
	}
	m := svc.Metrics()
	if m.Rounds != 1 || m.LastRoundRules != 0 {
		t.Fatalf("rounds=%d lastRoundRules=%d, want 1 and 0", m.Rounds, m.LastRoundRules)
	}
	if m.LastRoundMicrosPerRule != 0 {
		t.Fatalf("LastRoundMicrosPerRule = %v for a zero-rule round, want 0", m.LastRoundMicrosPerRule)
	}
	found := false
	for _, g := range m.Groups {
		if g.Group != "quietgroup" {
			continue
		}
		found = true
		if g.Rounds != 1 || g.LastRoundRules != 0 {
			t.Fatalf("group metrics %+v, want 1 round of 0 rules", g)
		}
		if g.LastRoundMicrosPerRule != 0 {
			t.Fatalf("group LastRoundMicrosPerRule = %v for a zero-rule round, want 0", g.LastRoundMicrosPerRule)
		}
	}
	if !found {
		t.Fatalf("group quietgroup missing from metrics: %+v", m.Groups)
	}
	// A NaN or Inf would fail here: encoding/json rejects them.
	if _, err := json.Marshal(m); err != nil {
		t.Fatalf("metrics snapshot does not marshal: %v", err)
	}
}
