package monocle

// Fuzz target for the trace decoder. Traces are the record/replay
// subsystem's crash-safety surface: monotrace and the replay backend
// feed them whole files that may end in a torn line (a recorder killed
// mid-batch) or contain foreign bytes (a corrupted disk, a truncated
// artifact download). The target asserts the decoder never panics, is
// deterministic, that everything it accepts re-encodes and re-decodes
// to the same trace, and that a torn tail appended to any decodable
// stream never changes the already-parsed prefix.

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// encodeTrace renders a decoded trace back to its on-disk JSON-line form.
func encodeTrace(t *testing.T, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(tr.Header); err != nil {
		t.Fatalf("re-encoding header: %v", err)
	}
	for i := range tr.Records {
		if err := enc.Encode(&tr.Records[i]); err != nil {
			t.Fatalf("re-encoding record %d: %v", i, err)
		}
	}
	return buf.Bytes()
}

func FuzzTraceDecode(f *testing.F) {
	seeds := []string{
		// A miniature but complete recorded session: header, connect,
		// spec and rule-op annotations, apply, observe, event, round
		// marks, close.
		`{"monocle_trace":1,"switch":1}
{"seq":1,"t":1000,"kind":"spec","spec":{"id":1,"ports":[1,2],"backend":"proxy","address":"127.0.0.1:6653","peers":{"1":1,"2":1}}}
{"seq":2,"t":2000,"kind":"connect"}
{"seq":3,"t":2500,"kind":"event","event":{"type":"connected","detail":"connected to switch"}}
{"seq":4,"t":3000,"kind":"rule_op","rule_op":{"op":"add","rule":{"id":100,"priority":10,"match":{"dl_type":"2048"},"actions":[{"output":2}]}}}
{"seq":5,"t":3100,"kind":"apply","op":{"op":"add","rule":{"id":100,"priority":10,"match":{"dl_type":"2048"},"actions":[{"output":2}]}},"epoch":1}
{"seq":6,"t":4000,"kind":"observe","probe":{"header":{"dl_type":2048,"in_port":1},"present":{"emissions":[{"port":2,"header":{"dl_type":2048,"in_port":1}}]},"absent":{"drop":true}},"rule_id":100,"expect":"present","verdict":"confirmed"}
{"seq":7,"t":5000,"kind":"round","round":1}
{"seq":8,"t":6000,"kind":"epoch","epoch":1}
{"seq":9,"t":7000,"kind":"close"}
`,
		// Observe error and event error forms.
		`{"monocle_trace":1,"switch":2}
{"seq":1,"kind":"observe","probe":{"header":{}},"rule_id":7,"expect":"absent","err":"monocle: observe timeout"}
{"seq":2,"kind":"event","event":{"type":"disconnected","err":"EOF","rule":7}}
`,
		// Torn tail: the recorder died mid-line.
		`{"monocle_trace":1,"switch":1}
{"seq":1,"kind":"connect"}
{"seq":2,"kind":"apply","op":{"op":"add","ru`,
		// Unknown kinds and blank lines are skipped, not fatal.
		`{"monocle_trace":1}

{"seq":1,"kind":"hologram","verdict":"yes"}
{"seq":2,"kind":"connect"}
`,
		// The rejects: no header, bad magic, future version, garbage.
		`{"seq":1,"kind":"connect"}`,
		`{"monocle_trace":0,"switch":1}`,
		`{"monocle_trace":99,"switch":1}`,
		`{"switch":1}`,
		`not json at all`,
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := DecodeTrace(bytes.NewReader(data))
		tr2, err2 := DecodeTrace(bytes.NewReader(data))
		if (err == nil) != (err2 == nil) {
			t.Fatalf("nondeterministic decode: %v vs %v", err, err2)
		}
		if err != nil {
			return
		}
		if !reflect.DeepEqual(tr, tr2) {
			t.Fatalf("nondeterministic trace: %+v vs %+v", tr, tr2)
		}

		// Round-trip: re-encoding the accepted trace in the on-disk form
		// (one JSON line per record under the same header) must decode
		// back to a trace with the identical canonical encoding. Byte
		// comparison of the encodings, not DeepEqual on the structs:
		// adversarial inputs can produce states JSON cannot distinguish
		// (an empty-but-non-nil map under omitempty, case-folded keys)
		// that are equal on disk without being equal in memory.
		canonical := encodeTrace(t, tr)
		rt, err := DecodeTrace(bytes.NewReader(canonical))
		if err != nil {
			t.Fatalf("re-decoding accepted trace: %v", err)
		}
		if again := encodeTrace(t, rt); !bytes.Equal(again, canonical) {
			t.Fatalf("round-trip changed the trace:\n first:  %s\n second: %s", canonical, again)
		}

		// Torn-tail tolerance: a partial line appended to any decodable
		// stream must never corrupt the already-parsed prefix.
		torn := append(append([]byte{}, canonical...), []byte(`{"seq":9999,"kind":"app`)...)
		tt, err := DecodeTrace(bytes.NewReader(torn))
		if err != nil {
			t.Fatalf("torn tail made the trace unreadable: %v", err)
		}
		if got := encodeTrace(t, tt); !bytes.Equal(got, canonical) {
			t.Fatalf("torn tail changed the parsed prefix:\n want: %s\n got:  %s", canonical, got)
		}
	})
}
